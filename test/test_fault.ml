(* The fault-injection subsystem: plan parsing, per-engine crash
   reconciliation on the PFS, stripe-boundary tearing, end-to-end
   crash/restart through the runner, and determinism of the
   crash-consistency report. *)

module Plan = Hpcfs_fault.Plan
module Injector = Hpcfs_fault.Injector
module Report = Hpcfs_fault.Report
module Consistency = Hpcfs_fs.Consistency
module Pfs = Hpcfs_fs.Pfs
module Fdata = Hpcfs_fs.Fdata
module Stripe = Hpcfs_fs.Stripe
module Target = Hpcfs_fs.Target
module Journal = Hpcfs_fs.Journal
module Recovery = Hpcfs_fs.Recovery
module Backend = Hpcfs_fs.Backend
module Prng = Hpcfs_util.Prng
module Posix = Hpcfs_posix.Posix
module Runner = Hpcfs_apps.Runner
module Validation = Hpcfs_apps.Validation

let s = Bytes.of_string

(* Plan DSL ---------------------------------------------------------------- *)

let test_plan_roundtrip () =
  List.iter
    (fun spec ->
      match Plan.of_string spec with
      | Ok plan -> Alcotest.(check string) spec spec (Plan.to_string plan)
      | Error e -> Alcotest.fail (spec ^ ": " ^ e))
    [
      "crash:rank=3,io=120";
      "crash:rank=0,t=500,restart=64";
      "drainfail:count=2";
      "drainfail:count=5,node=1,after=100";
      "crash:rank=1,io=7,restart=8;drainfail:count=3,node=0";
      "ostfail:target=2,t=50";
      "ostfail:target=0,t=10,recover=64";
      "ostfail:target=1,t=10,failover=1";
      "mdsfail:t=100";
      "mdsfail:t=9,recover=5";
      "crash:rank=1,io=7;ostfail:target=1,t=5,recover=8";
      "logfail:count=4";
      "logfail:count=2,node=1,after=50";
      "logcap:bytes=4096";
      "crash:rank=0,t=90;logfail:count=1;logcap:bytes=65536";
    ];
  List.iter
    (fun spec ->
      match Plan.of_string spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("expected parse error: " ^ spec))
    [
      "";
      "crash:rank=1";
      "crash:rank=1,io=2,t=3";
      "drainfail:node=0";
      "meteor:rank=1";
      "crash:rank=x,io=2";
      "ostfail:t=5";
      "ostfail:target=2";
      "mdsfail:recover=8";
      "ostfail:target=1,t=5,mode=9";
    ]

let test_plan_parse_error_messages () =
  (* The satellite contract: a rejected spec names the offending token and
     the accepted grammar, so a typo in a CI plan is diagnosable from the
     message alone. *)
  let err spec expected =
    match Plan.of_string spec with
    | Ok _ -> Alcotest.fail ("expected parse error: " ^ spec)
    | Error e -> Alcotest.(check string) spec expected e
  in
  err "ostfail:t=5" "ostfail: missing target=K";
  err "ostfail:target=2" "ostfail: missing t=T";
  err "mdsfail:recover=8" "mdsfail: missing t=T";
  err "ostfail:target=x,t=5" "ostfail: target: not an integer: \"x\"";
  err "ostfail:target=1,t=5,mode=9"
    "ostfail: unknown key \"mode\" (accepted: target, t, recover, failover)";
  err "mdsfail:t" "mdsfail: expected key=value, got \"t\"";
  err "crash:rank=1,io=2,restart=zz" "crash: restart: not an integer: \"zz\"";
  err "drainfail:node=0" "drainfail: missing count=K";
  err "meteor:rank=1"
    "unknown fault event \"meteor\"; expected crash, drainfail, ostfail, \
     mdsfail, logfail or logcap";
  (* An unknown key is always reported as an unknown key with the event's
     accepted alternatives — even when its value is not an integer, which
     used to shadow the real mistake with a bad-value message. *)
  err "crash:t=5,fanout=wide"
    "crash: unknown key \"fanout\" (accepted: rank, io, t, restart)";
  err "logfail:count=2,when=3"
    "logfail: unknown key \"when\" (accepted: count, node, after)";
  err "logfail:node=0" "logfail: missing count=K";
  err "logcap:limit=9" "logcap: unknown key \"limit\" (accepted: bytes)";
  err "logcap:bytes=0" "logcap: bytes must be positive";
  err "logcap=x" "logcap: bytes: not an integer: \"x\""

let test_plan_constructors () =
  let plan =
    Plan.make ~name:"p" ~seed:7
      [
        Plan.crash ~rank:2 ~restart_delay:16 (Plan.At_io 9);
        Plan.drain_fault ~node:1 3;
      ]
  in
  Alcotest.(check int) "one crash" 1 (Plan.crash_count plan);
  Alcotest.(check string) "spec" "crash:rank=2,io=9,restart=16;drainfail:count=3,node=1"
    (Plan.to_string plan);
  let log_plan = Plan.make [ Plan.log_fail ~node:2 ~after:10 5; Plan.log_cap 4096 ] in
  Alcotest.(check string) "log spec" "logfail:count=5,node=2,after=10;logcap:bytes=4096"
    (Plan.to_string log_plan);
  Alcotest.(check bool) "has log events" true (Plan.has_log_events log_plan);
  Alcotest.(check bool) "no log events" false (Plan.has_log_events plan);
  (* [logcap=B] is shorthand for [logcap:bytes=B]. *)
  match Plan.of_string "logcap=8192" with
  | Ok p -> Alcotest.(check string) "shorthand" "logcap:bytes=8192" (Plan.to_string p)
  | Error e -> Alcotest.fail e

(* Per-engine crash reconciliation ----------------------------------------- *)

(* The canonical differentiated scenario (acceptance for the subsystem):
   write A, fsync, write B, crash.  Strong persists both; commit persists
   only the fsynced A; session (no close) loses both; eventual depends on
   the propagation delay.  Same history, four different losses. *)
let crash_loss semantics =
  let pfs = Pfs.create semantics in
  ignore (Pfs.open_file pfs ~time:1 ~rank:0 ~create:true "/ck");
  Pfs.write pfs ~time:2 ~rank:0 "/ck" ~off:0 (s "AAAAAAAA");
  Pfs.fsync pfs ~time:3 ~rank:0 "/ck";
  Pfs.write pfs ~time:4 ~rank:0 "/ck" ~off:8 (s "BBBBBBBB");
  let stats, per_file = Pfs.crash pfs ~time:5 () in
  Alcotest.(check int) "one file" 1 (List.length per_file);
  stats.Fdata.lost_bytes

let test_crash_differentiates_engines () =
  let strong = crash_loss Consistency.Strong in
  let commit = crash_loss Consistency.Commit in
  let session = crash_loss Consistency.Session in
  let eventual_slow = crash_loss (Consistency.Eventual { delay = 100 }) in
  let eventual_fast = crash_loss (Consistency.Eventual { delay = 1 }) in
  Alcotest.(check int) "strong loses nothing" 0 strong;
  Alcotest.(check int) "commit loses the unsynced write" 8 commit;
  Alcotest.(check int) "session loses both (no close)" 16 session;
  Alcotest.(check int) "slow eventual loses both" 16 eventual_slow;
  Alcotest.(check int) "fast eventual loses nothing" 0 eventual_fast;
  (* The differentiation the report demonstrates, locked in. *)
  Alcotest.(check bool) "strictly ordered" true
    (strong < commit && commit < session)

let test_torn_write_stripe_boundary () =
  (* A 20-byte in-flight write over 8-byte stripes is three pieces
     (8+8+4); keeping two of them must keep exactly the 16-byte
     stripe-aligned prefix. *)
  let pfs =
    Pfs.create
      ~stripe:(Stripe.create ~stripe_size:8 ~server_count:4)
      Consistency.Commit
  in
  ignore (Pfs.open_file pfs ~time:1 ~rank:0 ~create:true "/f");
  Pfs.write pfs ~time:2 ~rank:0 "/f" ~off:0 (s "aaaaaaaabbbbbbbbcccc");
  let stats, _ =
    Pfs.crash pfs ~time:3
      ~keep_stripes:(fun ~total ->
        Alcotest.(check int) "three stripe pieces" 3 total;
        2)
      ()
  in
  Alcotest.(check int) "one torn write" 1 stats.Fdata.torn_writes;
  Alcotest.(check int) "stripe-aligned prefix survives" 16
    stats.Fdata.torn_bytes;
  Alcotest.(check int) "no outright losses" 0 stats.Fdata.lost_writes;
  (* Publish the survivor and look at it: the prefix is intact, the torn
     tail reads as holes. *)
  Pfs.fsync pfs ~time:10 ~rank:0 "/f";
  let r = Pfs.read_back pfs ~time:20 "/f" in
  Alcotest.(check string) "prefix intact, tail gone"
    "aaaaaaaabbbbbbbb\000\000\000\000"
    (Bytes.to_string r.Fdata.data)

let test_crash_keeps_all_stripes () =
  (* keep_stripes = total: the in-flight write survives whole. *)
  let pfs =
    Pfs.create
      ~stripe:(Stripe.create ~stripe_size:8 ~server_count:4)
      Consistency.Commit
  in
  ignore (Pfs.open_file pfs ~time:1 ~rank:0 ~create:true "/f");
  Pfs.write pfs ~time:2 ~rank:0 "/f" ~off:0 (s "aaaaaaaabbbb");
  let stats, _ =
    Pfs.crash pfs ~time:3 ~keep_stripes:(fun ~total -> total) ()
  in
  Alcotest.(check int) "torn whole" 12 stats.Fdata.torn_bytes;
  Alcotest.(check int) "nothing lost" 0 stats.Fdata.lost_bytes

(* End-to-end crash/restart through the runner ----------------------------- *)

(* A minimal checkpointing app: every rank writes its own 96-byte file in
   three 32-byte pieces — the first fsynced, the second left uncommitted,
   the third the in-flight write a planned crash lands on (the victim's
   5th backend call: open, write, fsync, write, write).  Idempotent, so a
   restart re-produces the same files — the recovery path of N-N
   checkpointing.  The three pieces are what differentiates the engines at
   the crash: strong persists the two completed writes, commit only the
   fsynced one, session neither (the file is never closed before the
   crash). *)
let attempts_seen = ref []

let piece rank tag = Bytes.init 32 (fun i -> Char.chr ((rank + tag + i) land 0xff))

let ck_body env =
  let rank = Hpcfs_mpi.Mpi.rank env.Runner.comm in
  if rank = 0 && not (List.mem env.Runner.attempt !attempts_seen) then
    attempts_seen := env.Runner.attempt :: !attempts_seen;
  Hpcfs_apps.App_common.setup_dir env "/out";
  let path = Printf.sprintf "/out/ck.%d" rank in
  let fd =
    Posix.openf env.Runner.posix path
      [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_TRUNC ]
  in
  ignore (Posix.write env.Runner.posix fd (piece rank 0));
  Posix.fsync env.Runner.posix fd;
  ignore (Posix.write env.Runner.posix fd (piece rank 1));
  ignore (Posix.write env.Runner.posix fd (piece rank 2));
  Posix.close env.Runner.posix fd

let final_contents result =
  List.map
    (fun r ->
      let path = Printf.sprintf "/out/ck.%d" r in
      (path, Bytes.to_string (Pfs.read_back result.Runner.pfs ~time:(1 lsl 30) path).Fdata.data))
    [ 0; 1; 2; 3 ]

let test_runner_crash_restart () =
  attempts_seen := [];
  let plan =
    Plan.make ~seed:9 [ Plan.crash ~rank:1 ~restart_delay:8 (Plan.At_io 5) ]
  in
  let faulted =
    Runner.run ~semantics:Consistency.Session ~nprocs:4 ~faults:plan ck_body
  in
  let reference = Runner.run ~semantics:Consistency.Session ~nprocs:4 ck_body in
  Alcotest.(check (list int)) "both attempts ran" [ 1; 0 ] !attempts_seen;
  (match faulted.Runner.faults with
  | None -> Alcotest.fail "expected a fault outcome"
  | Some o ->
    Alcotest.(check int) "one crash" 1 (List.length o.Injector.o_crashes);
    Alcotest.(check int) "one restart" 1 o.Injector.o_restarts;
    let c = List.hd o.Injector.o_crashes in
    Alcotest.(check int) "victim rank" 1 c.Injector.cr_rank;
    Alcotest.(check int) "died on its fifth I/O call" 5 c.Injector.cr_io_index;
    Alcotest.(check bool) "the uncommitted write was lost or torn" true
      (c.Injector.cr_stats.Fdata.lost_writes
       + c.Injector.cr_stats.Fdata.torn_writes
      > 0));
  Alcotest.(check bool) "no fault outcome without a plan" true
    (reference.Runner.faults = None);
  (* The restart re-wrote the checkpoint: final contents match the
     fault-free run. *)
  Alcotest.(check (list (pair string string)))
    "recovered to the reference state" (final_contents reference)
    (final_contents faulted)

let test_runner_crash_no_restart () =
  attempts_seen := [];
  let plan = Plan.make ~seed:9 [ Plan.crash ~rank:1 (Plan.At_io 5) ] in
  let faulted =
    Runner.run ~semantics:Consistency.Session ~nprocs:4 ~faults:plan ck_body
  in
  Alcotest.(check (list int)) "single attempt" [ 0 ] !attempts_seen;
  match faulted.Runner.faults with
  | None -> Alcotest.fail "expected a fault outcome"
  | Some o ->
    Alcotest.(check int) "no restart" 0 o.Injector.o_restarts;
    Alcotest.(check bool) "session run lost the victim's write" true
      ((Injector.crash_stats o).Fdata.lost_bytes > 0)

(* Storage-target failures ------------------------------------------------- *)

(* The headline differentiation, locked in exact bytes: two 32-byte writes
   over 8-byte stripes on 4 servers put 8 bytes of each write on target 2
   ([16,24) and [48,56)).  Failing that target between the fsync and any
   close costs nothing under strong (settled on arrival) or commit (the
   fsync published both), and exactly those 16 unsettled bytes under
   session. *)
let target_loss semantics =
  let pfs =
    Pfs.create ~stripe:(Stripe.create ~stripe_size:8 ~server_count:4) semantics
  in
  ignore (Pfs.open_file pfs ~time:1 ~rank:0 ~create:true "/ck");
  Pfs.write pfs ~time:2 ~rank:0 "/ck" ~off:0 (Bytes.make 32 'A');
  Pfs.write pfs ~time:3 ~rank:0 "/ck" ~off:32 (Bytes.make 32 'B');
  Pfs.fsync pfs ~time:4 ~rank:0 "/ck";
  let stats, per_file, ranks, _ = Pfs.fail_target pfs ~time:5 2 in
  (stats, per_file, ranks)

let test_target_failure_differentiates_engines () =
  let lost sem = let s, _, _ = target_loss sem in s.Fdata.lost_bytes in
  Alcotest.(check int) "strong loses nothing" 0 (lost Consistency.Strong);
  Alcotest.(check int) "commit loses nothing after the commit" 0
    (lost Consistency.Commit);
  Alcotest.(check int) "session loses exactly the target's unsettled chunks"
    16 (lost Consistency.Session);
  let stats, per_file, ranks = target_loss Consistency.Session in
  (* Both writes lost their 8-byte middle chunk: torn, not dropped whole. *)
  Alcotest.(check int) "both writes torn" 2 stats.Fdata.torn_writes;
  Alcotest.(check int) "the off-target bytes survive" 48 stats.Fdata.torn_bytes;
  Alcotest.(check int) "one affected file" 1 (List.length per_file);
  Alcotest.(check (list int)) "the writer is the affected client" [ 0 ] ranks;
  (* An engine that lost nothing reports no affected files or clients. *)
  let _, per_file, ranks = target_loss Consistency.Strong in
  Alcotest.(check int) "strong: no affected files" 0 (List.length per_file);
  Alcotest.(check (list int)) "strong: no affected clients" [] ranks

(* The client journal ------------------------------------------------------ *)

let journal_scenario semantics ~publish =
  let pfs =
    Pfs.create ~stripe:(Stripe.create ~stripe_size:8 ~server_count:4) semantics
  in
  let j = Journal.create ~prng:(Prng.create 3) pfs in
  let b = Journal.wrap j (Backend.of_pfs pfs) in
  ignore (b.Backend.open_file ~time:1 ~rank:0 ~create:true ~trunc:false "/f");
  b.Backend.write ~time:2 ~rank:0 "/f" ~off:0 (Bytes.make 32 'A');
  b.Backend.write ~time:3 ~rank:0 "/f" ~off:32 (Bytes.make 32 'B');
  if publish then b.Backend.fsync ~time:4 ~rank:0 "/f";
  let _ = Pfs.fail_target pfs ~time:5 2 in
  Journal.on_target_fail j ~time:5 ~target:2;
  (pfs, j, b)

let test_journal_settle_rules () =
  (* Settling mirrors Fdata.persisted: strong on arrival, commit at the
     fsync, session never (no close here) — only unsettled entries turn
     dirty when their target dies. *)
  let outstanding sem ~publish =
    let _, j, _ = journal_scenario sem ~publish in
    Journal.outstanding j
  in
  Alcotest.(check (pair int int)) "strong: nothing pending" (0, 0)
    (outstanding Consistency.Strong ~publish:false);
  Alcotest.(check (pair int int)) "commit after fsync: nothing pending" (0, 0)
    (outstanding Consistency.Commit ~publish:true);
  Alcotest.(check (pair int int)) "commit without fsync: both entries dirty"
    (2, 64)
    (outstanding Consistency.Commit ~publish:false);
  Alcotest.(check (pair int int)) "session: both entries dirty" (2, 64)
    (outstanding Consistency.Session ~publish:false);
  Alcotest.(check (pair int int)) "eventual: delay not yet elapsed" (2, 64)
    (outstanding (Consistency.Eventual { delay = 100 }) ~publish:false)

let test_journal_replay_restores_contents () =
  let pfs, j, b = journal_scenario Consistency.Session ~publish:false in
  (* While the target is down: new writes to it park (retried under the
     capped backoff, accounted not slept), reads degrade to zeroes. *)
  b.Backend.write ~time:6 ~rank:0 "/f" ~off:16 (Bytes.make 8 'C');
  let st = Journal.stats j in
  Alcotest.(check int) "write parked" 1 st.Journal.parked_writes;
  Alcotest.(check bool) "retries and backoff accounted" true
    (st.Journal.retries > 0 && st.Journal.backoff_ticks > 0);
  let r = b.Backend.read ~time:7 ~rank:0 "/f" ~off:16 ~len:8 in
  Alcotest.(check string) "degraded read serves zeroes" (String.make 8 '\000')
    (Bytes.to_string r.Fdata.data);
  (* Replay lands nothing while the target is still down... *)
  Alcotest.(check int) "no replay while down" 0 (Journal.replay j ~time:8);
  (* ...and everything once it recovers: the two dirty entries plus the
     parked one, at their original ranks and timestamps. *)
  Pfs.recover_target pfs ~time:9 2;
  Alcotest.(check int) "replay lands all three entries" 72
    (Journal.replay j ~time:10);
  Alcotest.(check (pair int int)) "journal drained" (0, 0)
    (Journal.outstanding j);
  b.Backend.close_file ~time:11 ~rank:0 "/f";
  let r = Pfs.read_back pfs ~time:20 "/f" in
  Alcotest.(check string) "replay restored the history"
    (String.make 16 'A' ^ String.make 8 'C' ^ String.make 8 'A'
   ^ String.make 32 'B')
    (Bytes.to_string r.Fdata.data);
  (* fsck over a drained journal: every file clean, nothing lost. *)
  let rep = Recovery.check j ~time:30 in
  Alcotest.(check int) "no corrupted files" 0 rep.Recovery.corrupted;
  Alcotest.(check int) "no lost bytes" 0 rep.Recovery.lost_bytes

let test_recovery_verdicts () =
  (* A target that never comes back: the dirty entries cannot replay, fsck
     gives up on them and classifies the file corrupted. *)
  let _, j, _ = journal_scenario Consistency.Session ~publish:false in
  let rep = Recovery.check j ~time:100 in
  Alcotest.(check int) "one corrupted file" 1 rep.Recovery.corrupted;
  Alcotest.(check int) "both entries lost" 2 rep.Recovery.lost_writes;
  Alcotest.(check int) "their bytes are gone" 64 rep.Recovery.lost_bytes;
  (match rep.Recovery.files with
  | [ f ] ->
    Alcotest.(check bool) "verdict corrupted" true
      (f.Recovery.f_verdict = Recovery.Corrupted)
  | _ -> Alcotest.fail "expected one file report");
  (* The same failure with a recovered target: fsck's final replay lands
     everything and the file is recovered, not corrupted. *)
  let pfs, j, _ = journal_scenario Consistency.Session ~publish:false in
  Pfs.recover_target pfs ~time:9 2;
  let rep = Recovery.check j ~time:100 in
  Alcotest.(check int) "nothing corrupted" 0 rep.Recovery.corrupted;
  Alcotest.(check int) "one recovered file" 1 rep.Recovery.recovered;
  Alcotest.(check int) "all bytes replayed" 64 rep.Recovery.replayed_bytes

(* Target failures through the runner -------------------------------------- *)

let record_times p (result : Runner.result) =
  List.sort compare
    (List.filter_map
       (fun (r : Hpcfs_trace.Record.t) ->
         if p r.Hpcfs_trace.Record.func then Some r.Hpcfs_trace.Record.time
         else None)
       result.Runner.records)

let has_prefix pre s =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

(* The instant just before the first close: the closing rank has issued all
   three of its pieces, none of them settled under session — so an OST
   failure there is guaranteed to drop journaled-but-unsettled data.  The
   default 1 MiB stripe puts every 96-byte checkpoint on target 0. *)
let probe_fail_time () =
  let reference = Runner.run ~semantics:Consistency.Session ~nprocs:4 ck_body in
  (reference, List.hd (record_times (has_prefix "close") reference) - 1)

let test_runner_target_failure_recovery () =
  let reference, t_fail = probe_fail_time () in
  let plan = Plan.make ~seed:5 [ Plan.ost_fail ~target:0 ~recover:32 t_fail ] in
  let faulted =
    Runner.run ~semantics:Consistency.Session ~nprocs:4 ~faults:plan ck_body
  in
  (match faulted.Runner.faults with
  | None -> Alcotest.fail "expected a fault outcome"
  | Some o ->
    Alcotest.(check int) "one target failure" 1 (Injector.target_failure_count o);
    Alcotest.(check int) "no rank crash" 0 (List.length o.Injector.o_crashes);
    Alcotest.(check bool) "journal replayed the refused and dropped bytes"
      true
      (Injector.replayed_bytes o > 0);
    Alcotest.(check int) "nothing unreplayable" 0 (Injector.journal_lost_bytes o);
    (match o.Injector.o_recovery with
    | None -> Alcotest.fail "expected an fsck report"
    | Some rep ->
      Alcotest.(check int) "fsck: nothing corrupted" 0 rep.Recovery.corrupted;
      Alcotest.(check bool) "fsck: files recovered" true
        (rep.Recovery.recovered > 0)));
  Alcotest.(check (list (pair string string)))
    "recovered to the fault-free state" (final_contents reference)
    (final_contents faulted)

let test_runner_target_failure_permanent () =
  let reference, t_fail = probe_fail_time () in
  ignore reference;
  let plan = Plan.make ~seed:5 [ Plan.ost_fail ~target:0 t_fail ] in
  let faulted =
    Runner.run ~semantics:Consistency.Session ~nprocs:4 ~faults:plan ck_body
  in
  match faulted.Runner.faults with
  | None -> Alcotest.fail "expected a fault outcome"
  | Some o -> (
    Alcotest.(check bool) "unreplayable bytes remain" true
      (Injector.journal_lost_bytes o > 0);
    match o.Injector.o_recovery with
    | None -> Alcotest.fail "expected an fsck report"
    | Some rep ->
      Alcotest.(check bool) "fsck: corrupted files" true
        (rep.Recovery.corrupted > 0);
      Alcotest.(check bool) "fsck: lost bytes surfaced" true
        (rep.Recovery.lost_bytes > 0))

let test_runner_mds_failure () =
  attempts_seen := [];
  let reference = Runner.run ~semantics:Consistency.Session ~nprocs:4 ck_body in
  let t_last_open =
    List.hd (List.rev (record_times (has_prefix "open") reference))
  in
  let plan = Plan.make ~seed:5 [ Plan.mds_fail ~recover:16 (t_last_open - 1) ] in
  let faulted =
    Runner.run ~semantics:Consistency.Session ~nprocs:4 ~faults:plan ck_body
  in
  (match faulted.Runner.faults with
  | None -> Alcotest.fail "expected a fault outcome"
  | Some o -> (
    Alcotest.(check int) "mds failure recorded" 1
      (Injector.target_failure_count o);
    Alcotest.(check int) "aborted once, restarted once" 1 o.Injector.o_restarts;
    match o.Injector.o_crashes with
    | [ c ] ->
      Alcotest.(check int) "fail-stop job abort, not a rank crash" (-1)
        c.Injector.cr_rank
    | l ->
      Alcotest.fail (Printf.sprintf "expected one abort, got %d" (List.length l))));
  Alcotest.(check (list int)) "both attempts ran" [ 1; 0 ] !attempts_seen;
  Alcotest.(check (list (pair string string)))
    "the restart recovered the checkpoint" (final_contents reference)
    (final_contents faulted)

let test_target_crash_report_rows () =
  let _, t_fail = probe_fail_time () in
  let plan = Plan.make ~seed:5 [ Plan.ost_fail ~target:0 ~recover:32 t_fail ] in
  let semantics =
    [ Consistency.Strong; Consistency.Commit; Consistency.Session ]
  in
  let report () =
    Validation.crash_report ~nprocs:4 ~semantics ~app:"ck-ost" ~plan ck_body
  in
  let rows = report () in
  (match rows with
  | [ strong; commit; session ] ->
    (* Strong settled everything before the failure and the journal
       replays everything refused during the outage: the fault costs
       nothing.  Commit and session both lose unsettled extents at the
       failure instant and win them back through replay. *)
    Alcotest.(check string) "strong survives" "survives"
      (Report.verdict strong);
    Alcotest.(check string) "commit recovers via replay" "recovered"
      (Report.verdict commit);
    Alcotest.(check string) "session recovers via replay" "recovered"
      (Report.verdict session);
    List.iter
      (fun r ->
        Alcotest.(check int) "one target failure" 1 r.Report.r_target_failures;
        Alcotest.(check bool) "no rank crash" false r.Report.r_crashed;
        Alcotest.(check int) "no corruption left" 0 r.Report.r_post_corrupted;
        Alcotest.(check int) "nothing unreplayable" 0
          r.Report.r_journal_lost_bytes)
      rows;
    Alcotest.(check bool) "session replayed bytes" true
      (session.Report.r_replayed_bytes > 0)
  | _ -> Alcotest.fail "expected three rows");
  (* Bit-identical across runs: same seed, same plan, same report. *)
  let rows' = report () in
  Alcotest.(check bool) "rows identical" true (rows = rows');
  Alcotest.(check string) "CSV identical" (Report.to_csv rows)
    (Report.to_csv rows');
  Alcotest.(check bool) "target plans render the extended CSV" true
    (has_prefix Report.csv_header_extended (Report.to_csv rows))

(* The report -------------------------------------------------------------- *)

let test_crash_report_rows_and_determinism () =
  let plan =
    Plan.make ~seed:9 [ Plan.crash ~rank:1 ~restart_delay:8 (Plan.At_io 5) ]
  in
  let semantics =
    [ Consistency.Strong; Consistency.Commit; Consistency.Session ]
  in
  let report () =
    Validation.crash_report ~nprocs:4 ~semantics ~app:"ck-test" ~plan ck_body
  in
  let rows = report () in
  Alcotest.(check int) "one row per engine" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check string) "plan recorded" (Plan.to_string plan)
        r.Report.r_plan;
      Alcotest.(check bool) "crashed" true r.Report.r_crashed;
      Alcotest.(check int) "restarted" 1 r.Report.r_restarts;
      Alcotest.(check string) "restart recovered the checkpoint" "recovered"
        (Report.verdict r))
    rows;
  (* The differentiated outcome the subsystem exists to demonstrate: the
     same crash costs strictly more under each weaker publication rule —
     strong keeps both completed writes, commit only the fsynced one,
     session neither. *)
  let lost r = r.Report.r_lost_bytes in
  (match rows with
  | [ strong; commit; session ] ->
    Alcotest.(check int) "strong loses no completed write" 0 (lost strong);
    Alcotest.(check int) "commit loses the unsynced write" 32 (lost commit);
    Alcotest.(check int) "session loses both unpublished writes" 64
      (lost session)
  | _ -> Alcotest.fail "expected three rows");
  (* Bit-identical across runs: same seed, same plan, same report. *)
  let rows' = report () in
  Alcotest.(check bool) "rows identical" true (rows = rows');
  Alcotest.(check string) "CSV identical" (Report.to_csv rows)
    (Report.to_csv rows')

let test_report_verdicts () =
  let base =
    {
      Report.r_app = "a";
      r_semantics = "strong";
      r_plan = "p";
      r_crashed = true;
      r_crash_rank = 0;
      r_crash_time = 1;
      r_restarts = 0;
      r_lost_writes = 0;
      r_lost_bytes = 0;
      r_torn_writes = 0;
      r_torn_bytes = 0;
      r_bb_lost_bytes = 0;
      r_drain_faults = 0;
      r_post_files = 1;
      r_post_corrupted = 0;
      r_target_failures = 0;
      r_replayed_bytes = 0;
      r_journal_lost_bytes = 0;
      r_fsck_clean = 0;
      r_fsck_recovered = 0;
      r_fsck_corrupted = 0;
      r_wal = false;
      r_log_faults = 0;
      r_wal_recovered_bytes = 0;
      r_wal_lost_bytes = 0;
      r_wal_torn_bytes = 0;
    }
  in
  Alcotest.(check string) "survives" "survives" (Report.verdict base);
  Alcotest.(check string) "recovered" "recovered"
    (Report.verdict { base with Report.r_lost_writes = 1; r_lost_bytes = 8 });
  Alcotest.(check string) "corrupted" "corrupted"
    (Report.verdict
       { base with Report.r_lost_writes = 1; r_post_corrupted = 1 });
  Alcotest.(check string) "no-crash" "no-crash"
    (Report.verdict { base with Report.r_crashed = false });
  (* CSV quoting: plans contain commas. *)
  let row = { base with Report.r_plan = "crash:rank=0,io=1" } in
  Alcotest.(check bool) "plan quoted in CSV" true
    (String.length (Report.to_csv [ row ]) > 0
    && String.exists (fun c -> c = '"') (Report.to_csv [ row ]));
  (* Rows without storage failures keep the historical column set byte for
     byte; a single target failure switches the whole table to the
     extended one. *)
  Alcotest.(check bool) "legacy rows render the legacy CSV" true
    (has_prefix (Report.csv_header ^ "\n") (Report.to_csv [ base ]));
  Alcotest.(check bool) "a target failure switches to the extended CSV" true
    (has_prefix
       (Report.csv_header_extended ^ "\n")
       (Report.to_csv [ base; { base with Report.r_target_failures = 1 } ]))

(* Drain faults through a tiered run --------------------------------------- *)

let test_tiered_drain_faults () =
  let plan =
    Plan.make ~seed:9
      [
        Plan.crash ~rank:1 ~restart_delay:8 (Plan.At_io 2);
        Plan.drain_fault 2;
      ]
  in
  let result =
    Runner.run ~semantics:Consistency.Session ~nprocs:4
      ~tier:Hpcfs_bb.Tier.default_config ~faults:plan ck_body
  in
  match result.Runner.faults with
  | None -> Alcotest.fail "expected a fault outcome"
  | Some o ->
    Alcotest.(check int) "both drain faults injected" 2 o.Injector.o_drain_faults;
    let st =
      match result.Runner.tier with
      | Some t -> Hpcfs_bb.Tier.stats t
      | None -> Alcotest.fail "tiered run has a tier"
    in
    Alcotest.(check int) "tier counted them too" 2 st.Hpcfs_bb.Tier.drain_faults

let suite =
  [
    Alcotest.test_case "plan spec roundtrip" `Quick test_plan_roundtrip;
    Alcotest.test_case "plan parse error messages" `Quick
      test_plan_parse_error_messages;
    Alcotest.test_case "plan constructors" `Quick test_plan_constructors;
    Alcotest.test_case "crash differentiates engines" `Quick
      test_crash_differentiates_engines;
    Alcotest.test_case "torn write at stripe boundary" `Quick
      test_torn_write_stripe_boundary;
    Alcotest.test_case "torn write kept whole" `Quick
      test_crash_keeps_all_stripes;
    Alcotest.test_case "crash and restart through runner" `Quick
      test_runner_crash_restart;
    Alcotest.test_case "crash without restart" `Quick
      test_runner_crash_no_restart;
    Alcotest.test_case "crash report rows + determinism" `Quick
      test_crash_report_rows_and_determinism;
    Alcotest.test_case "report verdicts and CSV" `Quick test_report_verdicts;
    Alcotest.test_case "drain faults through tier" `Quick
      test_tiered_drain_faults;
    Alcotest.test_case "target failure differentiates engines" `Quick
      test_target_failure_differentiates_engines;
    Alcotest.test_case "journal settle rules" `Quick test_journal_settle_rules;
    Alcotest.test_case "journal replay restores contents" `Quick
      test_journal_replay_restores_contents;
    Alcotest.test_case "recovery verdicts" `Quick test_recovery_verdicts;
    Alcotest.test_case "target failure and recovery through runner" `Quick
      test_runner_target_failure_recovery;
    Alcotest.test_case "permanent target failure loses bytes" `Quick
      test_runner_target_failure_permanent;
    Alcotest.test_case "mds failure aborts and restarts" `Quick
      test_runner_mds_failure;
    Alcotest.test_case "target crash report rows + determinism" `Quick
      test_target_crash_report_rows;
  ]
