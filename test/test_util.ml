(* Unit and property tests for lib/util. *)

module Prng = Hpcfs_util.Prng
module Interval = Hpcfs_util.Interval
module Table = Hpcfs_util.Table
module Stats = Hpcfs_util.Stats

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let w = Prng.int_in g 5 9 in
    Alcotest.(check bool) "in closed range" true (w >= 5 && w <= 9)
  done

let test_prng_split_independent () =
  let g = Prng.create 1 in
  let h = Prng.split g in
  let a = Prng.bits64 g and b = Prng.bits64 h in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let test_prng_shuffle_permutation () =
  let g = Prng.create 3 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_interval_basics () =
  let i = Interval.of_len 10 5 in
  Alcotest.(check int) "length" 5 (Interval.length i);
  Alcotest.(check bool) "contains lo" true (Interval.contains i 10);
  Alcotest.(check bool) "excludes hi" false (Interval.contains i 15);
  Alcotest.(check bool) "empty" true (Interval.is_empty (Interval.make 3 3))

let test_interval_overlap () =
  let a = Interval.make 0 10 and b = Interval.make 5 15 in
  Alcotest.(check bool) "overlap" true (Interval.overlaps a b);
  let c = Interval.make 10 20 in
  Alcotest.(check bool) "touching intervals do not overlap" false
    (Interval.overlaps a c)

let test_interval_subtract () =
  let a = Interval.make 0 10 in
  (match Interval.subtract a (Interval.make 3 7) with
  | [ l; r ] ->
    Alcotest.(check int) "left hi" 3 l.Interval.hi;
    Alcotest.(check int) "right lo" 7 r.Interval.lo
  | _ -> Alcotest.fail "expected two pieces");
  Alcotest.(check int) "covering subtract empties" 0
    (List.length (Interval.subtract a (Interval.make 0 10)))

let test_interval_invalid () =
  Alcotest.check_raises "make rejects hi < lo"
    (Invalid_argument "Interval.make: hi < lo") (fun () ->
      ignore (Interval.make 5 4))

let prop_intersect_commutes =
  QCheck.Test.make ~name:"interval intersect commutes" ~count:500
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (a, b, c, d) ->
      let i1 = Interval.make (min a b) (max a b) in
      let i2 = Interval.make (min c d) (max c d) in
      Interval.intersect i1 i2 = Interval.intersect i2 i1)

let prop_subtract_disjoint =
  QCheck.Test.make ~name:"subtract pieces never overlap subtrahend" ~count:500
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (a, b, c, d) ->
      let i1 = Interval.make (min a b) (max a b) in
      let i2 = Interval.make (min c d) (max c d) in
      List.for_all
        (fun piece ->
          Interval.is_empty piece || not (Interval.overlaps piece i2))
        (Interval.subtract i1 i2))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "n" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && contains_sub s "name" && contains_sub s "alpha")

let test_table_pads_short_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  let s = Table.render t in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_stats_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [| 1.; 2.; 3. |]);
  Alcotest.(check (float 1e-9)) "stddev of constant" 0.0
    (Stats.stddev [| 5.; 5.; 5. |]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean [||])

let test_stats_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0)

let test_stats_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.; 1.; 2.; 3. |] in
  let total = Array.fold_left (fun a (_, _, c) -> a + c) 0 h in
  Alcotest.(check int) "all samples binned" 4 total

let test_stats_pct () =
  Alcotest.(check (float 1e-9)) "half" 50.0 (Stats.pct 1 2);
  Alcotest.(check (float 1e-9)) "zero whole" 0.0 (Stats.pct 1 0)

let test_stats_empty_edges () =
  Alcotest.check_raises "percentile raises on empty"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile [||] 50.0));
  Alcotest.(check (option (float 1e-9))) "percentile_opt empty" None
    (Stats.percentile_opt [||] 50.0);
  Alcotest.(check bool) "histogram_opt empty" true
    (Stats.histogram_opt ~bins:4 [||] = None)

let test_stats_single_sample () =
  let xs = [| 7.5 |] in
  Alcotest.(check (float 1e-9)) "p0 of singleton" 7.5 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p50 of singleton" 7.5
    (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100 of singleton" 7.5
    (Stats.percentile xs 100.0);
  Alcotest.(check (option (float 1e-9))) "percentile_opt singleton"
    (Some 7.5)
    (Stats.percentile_opt xs 95.0);
  match Stats.histogram_opt ~bins:3 xs with
  | None -> Alcotest.fail "histogram_opt singleton should be Some"
  | Some h ->
    let total = Array.fold_left (fun a (_, _, c) -> a + c) 0 h in
    Alcotest.(check int) "singleton binned once" 1 total

let test_stats_opt_agrees () =
  let xs = [| 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. |] in
  List.iter
    (fun p ->
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "p%g agrees" p)
        (Some (Stats.percentile xs p))
        (Stats.percentile_opt xs p))
    [ 0.0; 25.0; 50.0; 95.0; 100.0 ]

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "interval basics" `Quick test_interval_basics;
    Alcotest.test_case "interval overlap" `Quick test_interval_overlap;
    Alcotest.test_case "interval subtract" `Quick test_interval_subtract;
    Alcotest.test_case "interval invalid" `Quick test_interval_invalid;
    QCheck_alcotest.to_alcotest prop_intersect_commutes;
    QCheck_alcotest.to_alcotest prop_subtract_disjoint;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table pads" `Quick test_table_pads_short_rows;
    Alcotest.test_case "stats mean/stddev" `Quick test_stats_mean_stddev;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "stats pct" `Quick test_stats_pct;
    Alcotest.test_case "stats empty edges" `Quick test_stats_empty_edges;
    Alcotest.test_case "stats single sample" `Quick test_stats_single_sample;
    Alcotest.test_case "stats opt agrees" `Quick test_stats_opt_agrees;
  ]
