(* Differential suite: the extent-store {!Fdata} against the reference
   log-repaint model {!Fdata_ref} on randomized interleavings of
   write / commit / open / close / truncate / crash / laminate, under all
   four consistency engines.  Every probe compares returned bytes AND the
   stale-byte count, plus sizes, write counts and crash statistics — the
   extent store must be bit-for-bit the same observable machine. *)

open Hpcfs_fs

type op =
  | Write of int * int * int * int  (* rank, clock delta, off, len *)
  | Commit of int * int  (* rank, clock delta *)
  | Open of int * int
  | Close of int * int
  | Truncate of int * int  (* clock delta, new length *)
  | Crash of int * int  (* clock delta, prng seed *)
  | Laminate of int  (* clock delta *)

let pp_op = function
  | Write (r, dt, off, len) -> Printf.sprintf "W(r%d,%+d,%d+%d)" r dt off len
  | Commit (r, dt) -> Printf.sprintf "C(r%d,%+d)" r dt
  | Open (r, dt) -> Printf.sprintf "O(r%d,%+d)" r dt
  | Close (r, dt) -> Printf.sprintf "X(r%d,%+d)" r dt
  | Truncate (dt, len) -> Printf.sprintf "T(%+d,%d)" dt len
  | Crash (dt, seed) -> Printf.sprintf "K(%+d,#%d)" dt seed
  | Laminate dt -> Printf.sprintf "L(%+d)" dt

let gen_op =
  QCheck.Gen.(
    frequency
      [
        ( 8,
          map
            (fun ((r, dt), (off, len)) -> Write (r, dt, off, len))
            (pair
               (pair (int_bound 3) (int_range (-2) 4))
               (pair (int_bound 48) (int_range 1 16))) );
        (3, map2 (fun r dt -> Commit (r, dt)) (int_bound 3) (int_range (-2) 4));
        (3, map2 (fun r dt -> Open (r, dt)) (int_bound 3) (int_range (-2) 4));
        (3, map2 (fun r dt -> Close (r, dt)) (int_bound 3) (int_range (-2) 4));
        (1, map2 (fun dt len -> Truncate (dt, len)) (int_range 0 4) (int_bound 64));
        (1, map2 (fun dt seed -> Crash (dt, seed)) (int_range 0 4) (int_bound 999));
        (1, map (fun dt -> Laminate dt) (int_range 0 4));
      ])

let gen_ops = QCheck.Gen.(list_size (int_range 1 50) gen_op)

let arb_ops =
  QCheck.make gen_ops ~print:(fun ops -> String.concat " " (List.map pp_op ops))

(* Deterministic payload so mismatches localize to an operation. *)
let mk_data rank time off len =
  Bytes.init len (fun i -> Char.chr (((rank * 31) + (time * 7) + off + i) land 0xff))

(* A tiny LCG so both implementations see the same keep_stripes draws —
   *provided* they make the same tear calls in the same order, which is
   itself part of the contract under test. *)
let mk_keep seed =
  let s = ref seed in
  fun ~total ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod (total + 1)

exception Mismatch of string

let run_case sem ops =
  let a = Fdata.create () and b = Fdata_ref.create () in
  let clock = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> raise (Mismatch s)) fmt in
  let check_read ?(local_order = true) ~rank ~time ~off ~len () =
    let ra = Fdata.read ~local_order a ~semantics:sem ~rank ~time ~off ~len in
    let rb = Fdata_ref.read ~local_order b ~semantics:sem ~rank ~time ~off ~len in
    if not (Bytes.equal ra.Fdata.data rb.Fdata_ref.data) then
      fail "data mismatch rank=%d time=%d off=%d len=%d lo=%b: %S vs %S" rank
        time off len local_order
        (Bytes.to_string ra.Fdata.data)
        (Bytes.to_string rb.Fdata_ref.data);
    if ra.Fdata.stale_bytes <> rb.Fdata_ref.stale_bytes then
      fail "stale mismatch rank=%d time=%d off=%d len=%d lo=%b: %d vs %d" rank
        time off len local_order ra.Fdata.stale_bytes rb.Fdata_ref.stale_bytes
  in
  let probe () =
    if Fdata.size a <> Fdata_ref.size b then
      fail "size mismatch: %d vs %d" (Fdata.size a) (Fdata_ref.size b);
    if Fdata.write_count a <> Fdata_ref.write_count b then
      fail "write_count mismatch: %d vs %d" (Fdata.write_count a)
        (Fdata_ref.write_count b);
    let now = !clock in
    let whole = Fdata.size a + 4 in
    check_read ~rank:0 ~time:now ~off:0 ~len:whole ();
    check_read ~rank:5 ~time:(now + 3) ~off:0 ~len:whole ();
    check_read ~rank:2 ~time:(max 0 (now - 3)) ~off:0 ~len:whole ();
    check_read ~local_order:false ~rank:1 ~time:now ~off:0 ~len:whole ();
    check_read ~rank:1 ~time:now ~off:7 ~len:13 ();
    (* The Pfs oracle reads the same instance under Strong on every call;
       per-engine caches must not bleed into each other. *)
    let oa =
      Fdata.read a ~semantics:Consistency.Strong ~rank:(-1) ~time:(now + 100)
        ~off:0 ~len:whole
    and ob =
      Fdata_ref.read b ~semantics:Consistency.Strong ~rank:(-1)
        ~time:(now + 100) ~off:0 ~len:whole
    in
    if not (Bytes.equal oa.Fdata.data ob.Fdata_ref.data) then
      fail "oracle data mismatch";
    if oa.Fdata.stale_bytes <> ob.Fdata_ref.stale_bytes then
      fail "oracle stale mismatch: %d vs %d" oa.Fdata.stale_bytes
        ob.Fdata_ref.stale_bytes
  in
  List.iter
    (fun op ->
      (match op with
      | Write (rank, dt, off, len) ->
        clock := max 0 (!clock + dt);
        let data = mk_data rank !clock off len in
        let wa =
          try
            Fdata.write a ~rank ~time:!clock ~off data;
            true
          with Invalid_argument _ -> false
        in
        let wb =
          try
            Fdata_ref.write b ~rank ~time:!clock ~off (Bytes.copy data);
            true
          with Invalid_argument _ -> false
        in
        if wa <> wb then fail "write acceptance mismatch: %b vs %b" wa wb
      | Commit (rank, dt) ->
        clock := max 0 (!clock + dt);
        Fdata.commit a ~rank ~time:!clock;
        Fdata_ref.commit b ~rank ~time:!clock
      | Open (rank, dt) ->
        clock := max 0 (!clock + dt);
        Fdata.session_open a ~rank ~time:!clock;
        Fdata_ref.session_open b ~rank ~time:!clock
      | Close (rank, dt) ->
        clock := max 0 (!clock + dt);
        Fdata.session_close a ~rank ~time:!clock;
        Fdata_ref.session_close b ~rank ~time:!clock
      | Truncate (dt, len) ->
        clock := max 0 (!clock + dt);
        Fdata.truncate a ~time:!clock len;
        Fdata_ref.truncate b ~time:!clock len
      | Crash (dt, seed) ->
        clock := max 0 (!clock + dt);
        let sa =
          Fdata.crash a ~semantics:sem ~time:!clock ~stripe_size:8
            ~keep_stripes:(mk_keep seed)
        and sb =
          Fdata_ref.crash b ~semantics:sem ~time:!clock ~stripe_size:8
            ~keep_stripes:(mk_keep seed)
        in
        if
          sa.Fdata.lost_writes <> sb.Fdata_ref.lost_writes
          || sa.Fdata.lost_bytes <> sb.Fdata_ref.lost_bytes
          || sa.Fdata.torn_writes <> sb.Fdata_ref.torn_writes
          || sa.Fdata.torn_bytes <> sb.Fdata_ref.torn_bytes
        then
          fail "crash stats mismatch: (%d,%d,%d,%d) vs (%d,%d,%d,%d)"
            sa.Fdata.lost_writes sa.Fdata.lost_bytes sa.Fdata.torn_writes
            sa.Fdata.torn_bytes sb.Fdata_ref.lost_writes
            sb.Fdata_ref.lost_bytes sb.Fdata_ref.torn_writes
            sb.Fdata_ref.torn_bytes
      | Laminate dt ->
        clock := max 0 (!clock + dt);
        Fdata.laminate a ~time:!clock;
        Fdata_ref.laminate b ~time:!clock;
        if Fdata.is_laminated a <> Fdata_ref.is_laminated b then
          fail "lamination state mismatch");
      probe ())
    ops;
  true

let equiv_test sem name =
  QCheck.Test.make ~name ~count:150 arb_ops (fun ops ->
      try run_case sem ops
      with Mismatch msg -> QCheck.Test.fail_report msg)

let suite =
  [
    QCheck_alcotest.to_alcotest
      (equiv_test Consistency.Strong "extent store equals reference: strong");
    QCheck_alcotest.to_alcotest
      (equiv_test Consistency.Commit "extent store equals reference: commit");
    QCheck_alcotest.to_alcotest
      (equiv_test Consistency.Session "extent store equals reference: session");
    QCheck_alcotest.to_alcotest
      (equiv_test
         (Consistency.Eventual { delay = 3 })
         "extent store equals reference: eventual");
  ]
