lib/posix/posix.ml: Bytes Hashtbl Hpcfs_fs Hpcfs_sim Hpcfs_trace List String
