lib/posix/posix.mli: Hpcfs_fs Hpcfs_trace
