module Posix = Hpcfs_posix.Posix
module Mpi = Hpcfs_mpi.Mpi
module Record = Hpcfs_trace.Record

type t = {
  posix : Posix.ctx;
  comm : Mpi.comm;
  nfiles : int;
  basename : string;
}

let origin = Record.O_silo
let baton_tag = 3_000_001
let toc_bytes = 256

let create posix comm ~nfiles ~basename =
  if nfiles <= 0 then invalid_arg "Silo.create: nfiles";
  if Mpi.rank comm = 0 then begin
    Posix.mkdir posix ~origin basename;
    ignore (Posix.opendir posix ~origin basename)
  end;
  Mpi.barrier comm;
  { posix; comm; nfiles = min nfiles (Mpi.size comm); basename }

let group_of_rank t rank = rank * t.nfiles / Mpi.size t.comm

let group_members t g =
  List.init (Mpi.size t.comm) Fun.id
  |> List.filter (fun r -> group_of_rank t r = g)

let file_of_group t g = Printf.sprintf "%s/part.%d.silo" t.basename g

(* One rank's turn with the baton: open the group file, append the block,
   rewrite the table of contents twice (entry, then count) and close.  The
   double TOC rewrite is MACSio's same-process WAW; the close before the
   baton handoff is why no cross-process conflict survives session
   semantics. *)
let my_turn t ~first ~block =
  let path = file_of_group t (group_of_rank t (Mpi.rank t.comm)) in
  let flags =
    if first then [ Posix.O_RDWR; Posix.O_CREAT; Posix.O_TRUNC ]
    else [ Posix.O_RDWR ]
  in
  let fd = Posix.openf t.posix ~origin path flags in
  ignore (Posix.fstat t.posix ~origin fd);
  let pos = Posix.lseek t.posix ~origin fd 0 Posix.SEEK_END in
  let pos = if first then toc_bytes else pos in
  ignore (Posix.pwrite t.posix ~origin fd ~off:pos block);
  ignore (Posix.pwrite t.posix ~origin fd ~off:0 (Bytes.make toc_bytes 't'));
  ignore (Posix.pwrite t.posix ~origin fd ~off:0 (Bytes.make 8 'c'));
  Posix.close t.posix ~origin fd

let write_blocks t ~block =
  let me = Mpi.rank t.comm in
  let g = group_of_rank t me in
  let members = group_members t g in
  let rec position = function
    | [] -> invalid_arg "Silo: rank not in its own group"
    | r :: rest -> if r = me then 0 else 1 + position rest
  in
  let idx = position members in
  if idx > 0 then
    ignore (Mpi.recv t.comm ~src:(List.nth members (idx - 1)) ~tag:baton_tag);
  my_turn t ~first:(idx = 0) ~block;
  (match List.nth_opt members (idx + 1) with
  | Some next -> Mpi.send t.comm ~dst:next ~tag:baton_tag (Mpi.P_int idx)
  | None -> ());
  Mpi.barrier t.comm
