(** NetCDF classic-format writer model.

    The classic format keeps a header at the start of the file whose
    [numrecs] field is rewritten every time a record is appended along the
    unlimited dimension.  That rewrite is the single-process
    write-after-write overlap the paper finds in LAMMPS-NetCDF (Table 4:
    WAW-S).  All I/O is issued through the instrumented POSIX layer with
    origin [O_netcdf]. *)

type t

val create : Hpcfs_posix.Posix.ctx -> string -> header_bytes:int -> t
(** Create the file and write its header ([header_bytes] at offset 0). *)

val append_record : t -> bytes -> unit
(** Append one record after the current data section, then rewrite the
    [numrecs] field inside the header (offset 4, 4 bytes). *)

val sync : t -> unit
(** [nc_sync]: flush to disk (fsync). *)

val close : t -> unit
