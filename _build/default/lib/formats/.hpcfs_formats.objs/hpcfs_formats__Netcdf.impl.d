lib/formats/netcdf.ml: Bytes Hpcfs_posix Hpcfs_trace Int32
