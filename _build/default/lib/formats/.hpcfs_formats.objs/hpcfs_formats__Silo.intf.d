lib/formats/silo.mli: Hpcfs_mpi Hpcfs_posix
