lib/formats/adios.mli: Hpcfs_mpi Hpcfs_posix
