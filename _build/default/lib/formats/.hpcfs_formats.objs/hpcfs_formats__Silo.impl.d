lib/formats/silo.ml: Bytes Fun Hpcfs_mpi Hpcfs_posix Hpcfs_trace List Printf
