lib/formats/netcdf.mli: Hpcfs_posix
