lib/formats/adios.ml: Bytes Char Hpcfs_mpi Hpcfs_posix Hpcfs_trace Option Printf
