(** ADIOS2 BP4-engine writer model.

    A BP4 "file" is a directory: per-substream data files ([data.k]) that
    aggregator ranks append to, plus the metadata file [md.0] and the index
    file [md.idx] maintained by rank 0.  Each step appends an index record
    to [md.idx] {e and} overwrites a one-byte step-count field in its
    header — the single-byte overwrite the paper identifies as the cause of
    LAMMPS-ADIOS's WAW-S conflict ("overwriting of a single byte of the
    ADIOS metadata file (*/md.idx)").

    Data aggregation onto [substreams] writer ranks yields the M-M
    consecutive pattern of Table 3. *)

type t

val open_write :
  Hpcfs_posix.Posix.ctx -> Hpcfs_mpi.Mpi.comm -> string -> substreams:int -> t
(** Collective: creates the [.bp] directory tree (rank 0), opens this
    rank's substream file if it is an aggregator, and the metadata files on
    rank 0. *)

val write_step : t -> bytes -> unit
(** Collective: every rank contributes its step payload; aggregators append
    the gathered payloads to their substream file; rank 0 appends metadata
    and updates the index header. *)

val close : t -> unit
(** Collective. *)

val substream_of_rank : t -> int -> int
(** Which substream aggregates a given rank (for tests). *)
