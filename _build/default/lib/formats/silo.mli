(** Silo multi-file ("poor man's parallel", PMPIO) writer model.

    MACSio drives Silo in PMPIO mode: the N ranks are split into M groups,
    each group sharing one Silo file; within a group a baton is passed so
    only one rank writes at a time.  A rank's turn appends its mesh block
    and then updates the file's table of contents twice (directory entry,
    then the entry count) — two overlapping same-process writes, the WAW-S
    the paper reports for MACSio.  Because the baton holder closes the file
    before handing it over, cross-rank overlaps never conflict under
    session semantics, also matching Table 4 (no WAW-D). *)

type t

val create :
  Hpcfs_posix.Posix.ctx -> Hpcfs_mpi.Mpi.comm -> nfiles:int -> basename:string -> t
(** Collective: plans the group layout; rank 0 creates the directory. *)

val group_of_rank : t -> int -> int
(** Which Silo file a rank writes into. *)

val write_blocks : t -> block:bytes -> unit
(** Collective: every rank writes its block into its group's file under the
    baton discipline. *)

val toc_bytes : int
(** Size of the table-of-contents header at the start of each file. *)
