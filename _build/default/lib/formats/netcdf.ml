module Posix = Hpcfs_posix.Posix
module Record = Hpcfs_trace.Record

type t = {
  posix : Posix.ctx;
  fd : int;
  header_bytes : int;
  mutable numrecs : int;
  mutable data_end : int;
}

let origin = Record.O_netcdf

let create posix path ~header_bytes =
  if header_bytes < 8 then invalid_arg "Netcdf.create: header too small";
  (* The library resolves the path and stats the result (Figure 3: NetCDF
     introduces getcwd and stat into the LAMMPS trace). *)
  ignore (Posix.getcwd posix ~origin ());
  let fd =
    Posix.openf posix ~origin path [ Posix.O_RDWR; Posix.O_CREAT; Posix.O_TRUNC ]
  in
  ignore (Posix.pwrite posix ~origin fd ~off:0 (Bytes.make header_bytes 'h'));
  ignore (Posix.stat posix ~origin path);
  { posix; fd; header_bytes; numrecs = 0; data_end = header_bytes }

let append_record t data =
  ignore (Posix.pwrite t.posix ~origin t.fd ~off:t.data_end data);
  t.data_end <- t.data_end + Bytes.length data;
  t.numrecs <- t.numrecs + 1;
  (* Rewriting numrecs overlaps the header written at create time and the
     previous rewrite: the WAW-S of LAMMPS-NetCDF. *)
  let field = Bytes.create 4 in
  Bytes.set_int32_be field 0 (Int32.of_int t.numrecs);
  ignore (Posix.pwrite t.posix ~origin t.fd ~off:4 field)

let sync t = Posix.fsync t.posix ~origin t.fd

let close t = Posix.close t.posix ~origin t.fd
