module Posix = Hpcfs_posix.Posix
module Mpi = Hpcfs_mpi.Mpi
module Record = Hpcfs_trace.Record

type t = {
  posix : Posix.ctx;
  comm : Mpi.comm;
  dir : string;
  substreams : int;
  data_fd : int option; (* aggregators only *)
  md_fd : int option; (* rank 0 only *)
  idx_fd : int option; (* rank 0 only *)
  mutable step : int;
}

let origin = Record.O_adios
let data_tag = 2_000_001

let substream_of t rank = rank * t.substreams / Mpi.size t.comm

let substream_of_rank = substream_of

(* The lowest rank aggregating into a given substream. *)
let aggregator_of t sub =
  let n = Mpi.size t.comm in
  let rec go r =
    if r >= n then invalid_arg "Adios: empty substream"
    else if substream_of t r = sub then r
    else go (r + 1)
  in
  go 0

let open_write posix comm dir ~substreams =
  if substreams <= 0 then invalid_arg "Adios.open_write: substreams";
  let me = Mpi.rank comm in
  if me = 0 then begin
    (* BP4 resolves the target directory and marks the dataset as active
       with a sentinel that is unlinked at close (Figure 3: ADIOS
       introduces getcwd and unlink into the LAMMPS trace). *)
    ignore (Posix.getcwd posix ~origin ());
    Posix.mkdir posix ~origin dir;
    Posix.close posix ~origin
      (Posix.openf posix ~origin (dir ^ "/active")
         [ Posix.O_WRONLY; Posix.O_CREAT ])
  end;
  Mpi.barrier comm;
  let t =
    {
      posix;
      comm;
      dir;
      substreams = min substreams (Mpi.size comm);
      data_fd = None;
      md_fd = None;
      idx_fd = None;
      step = 0;
    }
  in
  let my_sub = substream_of t me in
  let data_fd =
    if aggregator_of t my_sub = me then
      Some
        (Posix.openf posix ~origin
           (Printf.sprintf "%s/data.%d" dir my_sub)
           [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_APPEND ])
    else None
  in
  let md_fd, idx_fd =
    if me = 0 then begin
      let md =
        Posix.openf posix ~origin (dir ^ "/md.0")
          [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_APPEND ]
      in
      let idx =
        Posix.openf posix ~origin (dir ^ "/md.idx")
          [ Posix.O_RDWR; Posix.O_CREAT ]
      in
      (* Index header: 64 bytes, written once at open. *)
      ignore (Posix.pwrite posix ~origin idx ~off:0 (Bytes.make 64 'i'));
      (Some md, Some idx)
    end
    else (None, None)
  in
  { t with data_fd; md_fd; idx_fd }

let write_step t payload =
  let me = Mpi.rank t.comm in
  let my_sub = substream_of t me in
  let agg = aggregator_of t my_sub in
  (* Ship payloads to the substream aggregator. *)
  if agg <> me then Mpi.send t.comm ~dst:agg ~tag:data_tag (Mpi.P_bytes payload);
  (match t.data_fd with
  | Some fd ->
    let n = Mpi.size t.comm in
    for r = 0 to n - 1 do
      if substream_of t r = my_sub then begin
        let data =
          if r = me then payload
          else begin
            match Mpi.recv t.comm ~src:r ~tag:data_tag with
            | Mpi.P_bytes b -> b
            | _ -> invalid_arg "Adios: bad payload"
          end
        in
        ignore (Posix.write t.posix ~origin fd data)
      end
    done
  | None -> ());
  (* Rank 0 appends the per-step metadata and index record, then overwrites
     the single-byte step counter in the md.idx header: the WAW-S of
     LAMMPS-ADIOS. *)
  (match (t.md_fd, t.idx_fd) with
  | Some md, Some idx ->
    ignore (Posix.write t.posix ~origin md (Bytes.make 128 'm'));
    ignore
      (Posix.pwrite t.posix ~origin idx ~off:(64 + (t.step * 24))
         (Bytes.make 24 'x'));
    ignore
      (Posix.pwrite t.posix ~origin idx ~off:8
         (Bytes.make 1 (Char.chr (t.step land 0xff))))
  | _ -> ());
  t.step <- t.step + 1;
  Mpi.barrier t.comm

let close t =
  Option.iter (fun fd -> Posix.close t.posix ~origin fd) t.data_fd;
  Option.iter (fun fd -> Posix.close t.posix ~origin fd) t.md_fd;
  Option.iter (fun fd -> Posix.close t.posix ~origin fd) t.idx_fd;
  if Mpi.rank t.comm = 0 then Posix.unlink t.posix ~origin (t.dir ^ "/active");
  Mpi.barrier t.comm
