(** Classification of traced POSIX functions.

    Mirrors the paper's operational taxonomy: data reads and writes drive
    the conflict analysis; [fsync]/[fdatasync]/[fflush]/[close]/[fclose]
    count as commit operations (footnote 2); and footnote 3's list of
    metadata and utility operations feeds the Figure 3 inventory. *)

type t =
  | Data_read
  | Data_write
  | Open
  | Close
  | Commit  (** fsync / fdatasync / fflush — commit without closing. *)
  | Seek
  | Metadata  (** Footnote 3 operations: stat, mkdir, unlink, ... *)
  | Other

val classify : string -> t
(** Classify a POSIX-layer function name. *)

val monitored_metadata_ops : string list
(** The footnote-3 list, in the paper's order: operations whose usage
    Figure 3 inventories. *)

val is_commit_for_conflicts : string -> bool
(** True for the functions the paper treats as commits when testing commit
    semantics: fsync, fdatasync, fflush, fclose, close. *)
