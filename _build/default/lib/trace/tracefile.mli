(** Text serialization of whole traces (one record per line).

    Round-trips through {!Record.to_line}/{!Record.of_line}; the CLI uses it
    to persist traces for later offline analysis, exactly as Recorder's
    trace files decouple capture from analysis in the paper. *)

val save : string -> Record.t list -> unit
(** Write records to a file, one per line, preceded by a comment header. *)

val load : string -> (Record.t list, string) result
(** Read a trace back, skipping blank and ['#'] comment lines; reports the
    first malformed line with its line number. *)

val to_string : Record.t list -> string
val of_string : string -> (Record.t list, string) result
