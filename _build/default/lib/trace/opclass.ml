type t =
  | Data_read
  | Data_write
  | Open
  | Close
  | Commit
  | Seek
  | Metadata
  | Other

let monitored_metadata_ops =
  [
    "mmap"; "mmap64"; "msync"; "stat"; "stat64"; "lstat"; "lstat64"; "fstat";
    "fstat64"; "getcwd"; "mkdir"; "rmdir"; "chdir"; "link"; "linkat";
    "unlink"; "symlink"; "symlinkat"; "readlink"; "readlinkat"; "rename";
    "chmod"; "chown"; "lchown"; "utime"; "opendir"; "readdir"; "closedir";
    "rewinddir"; "mknod"; "mknodat"; "fcntl"; "dup"; "dup2"; "pipe";
    "mkfifo"; "umask"; "fileno"; "access"; "faccessat"; "tmpfile"; "remove";
    "truncate"; "ftruncate";
  ]

let metadata_set = Hashtbl.create 64

let () =
  List.iter (fun f -> Hashtbl.replace metadata_set f ()) monitored_metadata_ops

let classify = function
  | "read" | "pread" | "pread64" | "fread" | "readv" -> Data_read
  | "write" | "pwrite" | "pwrite64" | "fwrite" | "writev" -> Data_write
  | "open" | "open64" | "fopen" | "fopen64" | "creat" -> Open
  | "close" | "fclose" -> Close
  | "fsync" | "fdatasync" | "fflush" -> Commit
  | "lseek" | "lseek64" | "fseek" | "fseeko" -> Seek
  | f -> if Hashtbl.mem metadata_set f then Metadata else Other

let is_commit_for_conflicts = function
  | "fsync" | "fdatasync" | "fflush" | "fclose" | "close" -> true
  | _ -> false
