lib/trace/collector.ml: Array List Record
