lib/trace/skew.ml: List Record
