lib/trace/skew.mli: Record
