lib/trace/tracefile.mli: Record
