lib/trace/collector.mli: Record
