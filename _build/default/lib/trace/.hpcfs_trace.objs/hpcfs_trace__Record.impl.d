lib/trace/record.ml: Format Fun List Option Printf Result String
