lib/trace/opclass.ml: Hashtbl List
