lib/trace/opclass.mli:
