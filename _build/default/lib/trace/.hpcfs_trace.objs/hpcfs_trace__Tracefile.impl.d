lib/trace/tracefile.ml: Buffer Fun In_channel List Printf Record String
