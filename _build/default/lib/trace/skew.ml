let align ~sync_point records =
  List.map
    (fun r -> { r with Record.time = r.Record.time - sync_point r.Record.rank })
    records
  |> List.stable_sort Record.compare_time

let max_pairwise_skew ~sync_point ~ranks =
  if ranks <= 0 then 0
  else begin
    let points = List.init ranks sync_point in
    let lo = List.fold_left min (List.hd points) points in
    let hi = List.fold_left max (List.hd points) points in
    hi - lo
  end
