let header = "# hpcfs trace v1: time rank layer origin func file fd offset count args..."

let to_string records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (Record.to_line r);
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
      else begin
        match Record.of_line line with
        | Ok r -> go (lineno + 1) (r :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      end
  in
  go 1 [] lines

let save path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string records))

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
