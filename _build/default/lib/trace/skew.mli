(** Clock-skew adjustment (Section 5.2).

    On a real cluster each rank's trace carries timestamps from its local
    clock.  The paper aligns them by executing a barrier at startup and
    shifting every rank's timestamps so that its barrier-exit time is zero.
    Our simulator has a global clock and needs no adjustment, but the
    methodology is part of the system: this module implements the shift and
    is exercised by tests that inject artificial skews. *)

val align : sync_point:(int -> int) -> Record.t list -> Record.t list
(** [align ~sync_point records] subtracts [sync_point rank] from every
    record of that rank (the rank's observed barrier-exit time), then
    re-sorts by adjusted time.  Adjusted times may be negative for records
    preceding the barrier. *)

val max_pairwise_skew : sync_point:(int -> int) -> ranks:int -> int
(** Largest difference between two ranks' sync points — the residual-skew
    figure the paper reports (under 20 microseconds on Quartz). *)
