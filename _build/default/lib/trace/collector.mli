(** In-memory trace sink shared by every instrumented I/O layer of one run. *)

type t

val create : unit -> t

val emit : t -> Record.t -> unit

val records : t -> Record.t list
(** All records in increasing timestamp order. *)

val by_rank : t -> Record.t list array
(** Records split per rank (index = rank), each in timestamp order.
    The array is sized by the largest rank seen. *)

val count : t -> int

val clear : t -> unit
