type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed = bits64 g in
  { state = seed }

let int g bound =
  assert (bound > 0);
  (* Keep 62 bits so the result fits in a non-negative OCaml int. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  v mod bound

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let float g bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (v /. 9007199254740992.0)

let bool g = Int64.logand (bits64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))
