type t = { lo : int; hi : int }

let make lo hi =
  if hi < lo then invalid_arg "Interval.make: hi < lo";
  { lo; hi }

let of_len off len = make off (off + len)

let length i = i.hi - i.lo

let is_empty i = i.hi = i.lo

let overlaps a b = a.lo < b.hi && b.lo < a.hi

let contains i x = i.lo <= x && x < i.hi

let intersect a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo < hi then Some { lo; hi } else None

let union_hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let subtract a b =
  if not (overlaps a b) then [ a ]
  else begin
    let left = if a.lo < b.lo then [ { lo = a.lo; hi = b.lo } ] else [] in
    let right = if b.hi < a.hi then [ { lo = b.hi; hi = a.hi } ] else [] in
    left @ right
  end

let compare_lo a b =
  match compare a.lo b.lo with 0 -> compare a.hi b.hi | c -> c

let pp ppf i = Format.fprintf ppf "[%d,%d)" i.lo i.hi
