(** Deterministic pseudo-random number generation.

    All stochastic choices in the simulator flow through this module so that
    every run of an application model is reproducible bit-for-bit.  The
    generator is SplitMix64, which has a single 64-bit word of state, passes
    BigCrush, and supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing [g]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniformly chosen element. Requires a non-empty array. *)
