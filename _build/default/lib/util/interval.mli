(** Closed-open byte intervals [\[lo, hi)] used for file extents.

    The analysis algorithms of the paper reason about byte ranges
    [(offset_start, offset_end)]; this module centralizes the interval
    arithmetic so that off-by-one conventions live in one place. *)

type t = { lo : int; hi : int }
(** Invariant: [lo <= hi]. The interval covers bytes [lo .. hi - 1];
    it is empty iff [lo = hi]. *)

val make : int -> int -> t
(** [make lo hi] builds an interval. Raises [Invalid_argument] if [hi < lo]. *)

val of_len : int -> int -> t
(** [of_len off len] is the interval of [len] bytes starting at [off]. *)

val length : t -> int

val is_empty : t -> bool

val overlaps : t -> t -> bool
(** Non-empty intersection of the two byte ranges. *)

val contains : t -> int -> bool
(** [contains i x] tests whether byte [x] lies in [i]. *)

val intersect : t -> t -> t option
(** Intersection, or [None] when disjoint (touching intervals are disjoint). *)

val union_hull : t -> t -> t
(** Smallest interval covering both arguments. *)

val subtract : t -> t -> t list
(** [subtract a b] is the (0, 1 or 2 piece) set difference [a \ b],
    in increasing order. *)

val compare_lo : t -> t -> int
(** Order by lower endpoint, then upper. *)

val pp : Format.formatter -> t -> unit
