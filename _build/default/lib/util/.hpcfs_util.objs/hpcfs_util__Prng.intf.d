lib/util/prng.mli:
