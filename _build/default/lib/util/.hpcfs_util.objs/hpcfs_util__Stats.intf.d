lib/util/stats.mli:
