lib/util/table.mli:
