type t = Strong | Commit | Session | Eventual of { delay : int }

let strength = function
  | Strong -> 4
  | Commit -> 3
  | Session -> 2
  | Eventual _ -> 1

let compare_strength a b = compare (strength a) (strength b)

let name = function
  | Strong -> "strong consistency"
  | Commit -> "commit consistency"
  | Session -> "session consistency"
  | Eventual _ -> "eventual consistency"

let pp ppf t = Format.pp_print_string ppf (name t)

let table1 =
  [
    ( "Strong Consistency",
      [ "GPFS"; "Lustre"; "GekkoFS"; "BeeGFS"; "BatchFS"; "OrangeFS" ] );
    ("Commit Consistency", [ "BSCFS"; "UnifyFS"; "SymphonyFS"; "BurstFS" ]);
    ("Session Consistency", [ "NFS"; "AFS"; "DDN IME"; "Gfarm/BB" ]);
    ("Eventual Consistency", [ "PLFS"; "echofs"; "MarFS" ]);
  ]

let category_of_pfs fs =
  let fs = String.lowercase_ascii fs in
  let matches (_, systems) =
    List.exists (fun s -> String.lowercase_ascii s = fs) systems
  in
  match List.find_opt matches table1 with
  | Some ("Strong Consistency", _) -> Some Strong
  | Some ("Commit Consistency", _) -> Some Commit
  | Some ("Session Consistency", _) -> Some Session
  | Some ("Eventual Consistency", _) -> Some (Eventual { delay = 0 })
  | Some _ | None -> None
