lib/fs/namespace.mli: Fdata
