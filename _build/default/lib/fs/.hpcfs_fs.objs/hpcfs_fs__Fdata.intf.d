lib/fs/fdata.mli: Consistency
