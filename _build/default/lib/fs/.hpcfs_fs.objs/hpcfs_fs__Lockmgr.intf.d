lib/fs/lockmgr.mli: Hpcfs_util
