lib/fs/lockmgr.ml: Hashtbl Hpcfs_util List
