lib/fs/namespace.ml: Fdata Hashtbl List String
