lib/fs/fdata.ml: Array Bytes Consistency Hashtbl Hpcfs_util List
