lib/fs/stripe.mli: Hpcfs_util
