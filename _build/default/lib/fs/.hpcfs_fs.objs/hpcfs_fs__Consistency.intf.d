lib/fs/consistency.mli: Format
