lib/fs/consistency.ml: Format List String
