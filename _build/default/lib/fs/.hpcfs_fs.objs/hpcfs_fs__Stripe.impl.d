lib/fs/stripe.ml: Array Hpcfs_util List
