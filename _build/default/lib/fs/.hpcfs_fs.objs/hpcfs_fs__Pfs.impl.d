lib/fs/pfs.ml: Bytes Consistency Fdata Hpcfs_util Lockmgr Namespace Stripe
