lib/fs/pfs.mli: Consistency Fdata Lockmgr Namespace Stripe
