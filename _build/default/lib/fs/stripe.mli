(** File striping across data servers (Lustre-style layout model).

    Used by the benchmark harness to report how an application's extents
    spread over object storage targets — the server-side counterpart of the
    paper's "global access pattern" discussion. *)

type t = { stripe_size : int; server_count : int }

val create : stripe_size:int -> server_count:int -> t
(** Raises [Invalid_argument] unless both parameters are positive. *)

val server_of_offset : t -> int -> int
(** Data server holding the given byte. *)

val split_extent : t -> Hpcfs_util.Interval.t -> (int * Hpcfs_util.Interval.t) list
(** Decompose an extent into per-server pieces, in offset order. *)

val server_load : t -> Hpcfs_util.Interval.t list -> int array
(** Bytes landing on each server for a set of extents. *)

val requests_per_server : t -> Hpcfs_util.Interval.t list -> int array
(** Number of (sub-)requests each server receives — each extent contributes
    one request to every server it touches. *)
