module Interval = Hpcfs_util.Interval

type t = { stripe_size : int; server_count : int }

let create ~stripe_size ~server_count =
  if stripe_size <= 0 || server_count <= 0 then
    invalid_arg "Stripe.create: parameters must be positive";
  { stripe_size; server_count }

let server_of_offset t off = off / t.stripe_size mod t.server_count

let split_extent t iv =
  let rec go lo acc =
    if lo >= iv.Interval.hi then List.rev acc
    else begin
      let stripe_end = ((lo / t.stripe_size) + 1) * t.stripe_size in
      let hi = min stripe_end iv.Interval.hi in
      go hi ((server_of_offset t lo, Interval.make lo hi) :: acc)
    end
  in
  go iv.Interval.lo []

let server_load t extents =
  let load = Array.make t.server_count 0 in
  List.iter
    (fun iv ->
      List.iter
        (fun (s, piece) -> load.(s) <- load.(s) + Interval.length piece)
        (split_extent t iv))
    extents;
  load

let requests_per_server t extents =
  let reqs = Array.make t.server_count 0 in
  List.iter
    (fun iv ->
      let touched = Array.make t.server_count false in
      List.iter (fun (s, _) -> touched.(s) <- true) (split_extent t iv);
      Array.iteri (fun s hit -> if hit then reqs.(s) <- reqs.(s) + 1) touched)
    extents;
  reqs
