module Sched = Hpcfs_sim.Sched
module Mpi = Hpcfs_mpi.Mpi
module Posix = Hpcfs_posix.Posix
module Record = Hpcfs_trace.Record
module Collector = Hpcfs_trace.Collector
module Interval = Hpcfs_util.Interval

type ctx = {
  posix : Posix.ctx;
  comm : Mpi.comm;
  cb_nodes : int;
  mutable agg_ranks : int array; (* computed lazily once size is known *)
}

let make_ctx ?(cb_nodes = 6) posix comm =
  if cb_nodes <= 0 then invalid_arg "Mpiio.make_ctx: cb_nodes";
  { posix; comm; cb_nodes; agg_ranks = [||] }

let aggregators_arr ctx =
  if Array.length ctx.agg_ranks = 0 then begin
    let n = Mpi.size ctx.comm in
    let k = min ctx.cb_nodes n in
    ctx.agg_ranks <- Array.init k (fun i -> i * n / k)
  end;
  ctx.agg_ranks

let aggregators ctx = Array.to_list (aggregators_arr ctx)

let is_aggregator ctx =
  Array.exists (fun r -> r = Mpi.rank ctx.comm) (aggregators_arr ctx)

type amode = { rd : bool; wr : bool; create : bool }

let mode_rdonly = { rd = true; wr = false; create = false }
let mode_wronly_create = { rd = false; wr = true; create = true }
let mode_rdwr_create = { rd = true; wr = true; create = true }

type fh = { path : string; fds : (int, int) Hashtbl.t; solo : bool }

let emit ctx ~origin ~func ?file ?offset ?count () =
  let time = Sched.tick () in
  Collector.emit (Posix.collector ctx.posix)
    (Record.make ~time ~rank:(Mpi.rank ctx.comm) ~layer:Record.L_mpiio ~origin
       ~func ?file ?offset ?count ())

let my_fd fh ctx =
  match Hashtbl.find_opt fh.fds (Mpi.rank ctx.comm) with
  | Some fd -> fd
  | None -> invalid_arg "Mpiio: file handle not opened on this rank"

let file_open ctx ?(origin = Record.O_app) path amode =
  emit ctx ~origin ~func:"MPI_File_open" ~file:path ();
  (* ROMIO probes the file system before opening (cf. the access/stat
     metadata calls the paper attributes to the MPI library in Figure 3). *)
  ignore (Posix.access ctx.posix ~origin:Record.O_mpi path);
  if Mpi.rank ctx.comm = 0 && amode.create then
    ignore (Posix.umask ctx.posix ~origin:Record.O_mpi 0o022);
  let flags =
    (if amode.rd && amode.wr then [ Posix.O_RDWR ]
     else if amode.wr then [ Posix.O_WRONLY ]
     else [ Posix.O_RDONLY ])
    @ (if amode.create then [ Posix.O_CREAT ] else [])
  in
  (* Rank 0 creates the file first so that a create+open race cannot leave
     some ranks observing a missing file. *)
  let fh = { path; fds = Hashtbl.create 8; solo = false } in
  if Mpi.rank ctx.comm = 0 then begin
    let fd = Posix.openf ctx.posix ~origin:Record.O_mpi path flags in
    Hashtbl.replace fh.fds 0 fd
  end;
  Mpi.barrier ctx.comm;
  if Mpi.rank ctx.comm <> 0 then begin
    let flags = List.filter (fun f -> f <> Posix.O_CREAT) flags in
    let fd = Posix.openf ctx.posix ~origin:Record.O_mpi path flags in
    Hashtbl.replace fh.fds (Mpi.rank ctx.comm) fd
  end;
  Mpi.barrier ctx.comm;
  fh

let file_close ctx ?(origin = Record.O_app) fh =
  emit ctx ~origin ~func:"MPI_File_close" ~file:fh.path ();
  Posix.close ctx.posix ~origin:Record.O_mpi (my_fd fh ctx);
  Hashtbl.remove fh.fds (Mpi.rank ctx.comm);
  if not fh.solo then Mpi.barrier ctx.comm

(* MPI_File_open over MPI_COMM_SELF: no collectivity, one rank's handle. *)
let file_open_self ctx ?(origin = Record.O_app) path amode =
  emit ctx ~origin ~func:"MPI_File_open" ~file:path ();
  ignore (Posix.access ctx.posix ~origin:Record.O_mpi path);
  let flags =
    (if amode.rd && amode.wr then [ Posix.O_RDWR ]
     else if amode.wr then [ Posix.O_WRONLY ]
     else [ Posix.O_RDONLY ])
    @ (if amode.create then [ Posix.O_CREAT ] else [])
  in
  let fh = { path; fds = Hashtbl.create 1; solo = true } in
  let fd = Posix.openf ctx.posix ~origin:Record.O_mpi path flags in
  Hashtbl.replace fh.fds (Mpi.rank ctx.comm) fd;
  fh

let file_sync ctx ?(origin = Record.O_app) fh =
  emit ctx ~origin ~func:"MPI_File_sync" ~file:fh.path ();
  Posix.fsync ctx.posix ~origin:Record.O_mpi (my_fd fh ctx);
  if not fh.solo then Mpi.barrier ctx.comm

let read_at ctx ?(origin = Record.O_app) fh ~off len =
  emit ctx ~origin ~func:"MPI_File_read_at" ~file:fh.path ~offset:off
    ~count:len ();
  Posix.pread ctx.posix ~origin:Record.O_mpi (my_fd fh ctx) ~off len

let write_at ctx ?(origin = Record.O_app) fh ~off data =
  emit ctx ~origin ~func:"MPI_File_write_at" ~file:fh.path ~offset:off
    ~count:(Bytes.length data) ();
  ignore (Posix.pwrite ctx.posix ~origin:Record.O_mpi (my_fd fh ctx) ~off data)

(* Two-phase collective buffering ----------------------------------------- *)

let exch_tag = 1_000_001

(* Contiguous aggregator file domains covering [lo, hi). *)
let domains ctx ~lo ~hi =
  let aggs = aggregators_arr ctx in
  let k = Array.length aggs in
  let span = hi - lo in
  let chunk = (span + k - 1) / k in
  Array.init k (fun i ->
      let dlo = lo + (i * chunk) in
      let dhi = min hi (dlo + chunk) in
      if dlo >= hi then None else Some (aggs.(i), Interval.make dlo dhi))
  |> Array.to_list |> List.filter_map Fun.id

(* Pieces of [iv] falling in each aggregator domain, in offset order. *)
let pieces_of domains iv =
  List.filter_map
    (fun (agg, dom) ->
      Option.map (fun inter -> (agg, inter)) (Interval.intersect dom iv))
    domains

let merge_runs intervals =
  let sorted = List.sort Interval.compare_lo intervals in
  let rec go acc = function
    | [] -> List.rev acc
    | iv :: rest -> (
      match acc with
      | prev :: acc' when prev.Interval.hi >= iv.Interval.lo ->
        go (Interval.union_hull prev iv :: acc') rest
      | _ -> go (iv :: acc) rest)
  in
  go [] sorted

(* All ranks' extents, gathered; only non-empty ones are kept. *)
let gather_extents ctx ~off ~len =
  let all = Mpi.allgather ctx.comm (Mpi.P_ints [| off; len |]) in
  Array.to_list all
  |> List.mapi (fun r p ->
         match p with
         | Mpi.P_ints [| o; l |] when l > 0 -> Some (r, Interval.of_len o l)
         | _ -> None)
  |> List.filter_map Fun.id

let write_at_all ctx ?(origin = Record.O_app) fh ~off data =
  let len = Bytes.length data in
  emit ctx ~origin ~func:"MPI_File_write_at_all" ~file:fh.path ~offset:off
    ~count:len ();
  let extents = gather_extents ctx ~off ~len in
  (if extents <> [] then begin
     let me = Mpi.rank ctx.comm in
     let lo = List.fold_left (fun a (_, iv) -> min a iv.Interval.lo) max_int extents in
     let hi = List.fold_left (fun a (_, iv) -> max a iv.Interval.hi) 0 extents in
     let domains = domains ctx ~lo ~hi in
     (* Phase 1: ship my pieces to their aggregators. *)
     let local = ref [] in
     if len > 0 then
       List.iter
         (fun (agg, piece) ->
           let sub =
             Bytes.sub data (piece.Interval.lo - off) (Interval.length piece)
           in
           if agg = me then local := (piece, sub) :: !local
           else begin
             Mpi.send ctx.comm ~dst:agg ~tag:exch_tag
               (Mpi.P_ints [| piece.Interval.lo |]);
             Mpi.send ctx.comm ~dst:agg ~tag:exch_tag (Mpi.P_bytes sub)
           end)
         (pieces_of domains (Interval.of_len off len));
     (* Phase 2: aggregators assemble their domain and issue large writes. *)
     if List.exists (fun (agg, _) -> agg = me) domains then begin
       let collected = ref !local in
       List.iter
         (fun (r, iv) ->
           if r <> me then
             List.iter
               (fun (agg, piece) ->
                 if agg = me then begin
                   let o =
                     match Mpi.recv ctx.comm ~src:r ~tag:exch_tag with
                     | Mpi.P_ints [| o |] -> o
                     | _ -> invalid_arg "Mpiio: bad piece header"
                   in
                   let sub =
                     match Mpi.recv ctx.comm ~src:r ~tag:exch_tag with
                     | Mpi.P_bytes b -> b
                     | _ -> invalid_arg "Mpiio: bad piece body"
                   in
                   assert (o = piece.Interval.lo);
                   collected := (piece, sub) :: !collected
                 end)
               (pieces_of domains iv))
         extents;
       (* Write back merged contiguous runs covering the collected pieces. *)
       let runs = merge_runs (List.map fst !collected) in
       List.iter
         (fun run ->
           let buf = Bytes.make (Interval.length run) '\000' in
           List.iter
             (fun (piece, sub) ->
               if Interval.overlaps piece run then
                 Bytes.blit sub 0 buf (piece.Interval.lo - run.Interval.lo)
                   (Bytes.length sub))
             !collected;
           ignore
             (Posix.pwrite ctx.posix ~origin:Record.O_mpi (my_fd fh ctx)
                ~off:run.Interval.lo buf))
         runs
     end
   end);
  Mpi.barrier ctx.comm

let read_at_all ctx ?(origin = Record.O_app) fh ~off len =
  emit ctx ~origin ~func:"MPI_File_read_at_all" ~file:fh.path ~offset:off
    ~count:len ();
  let extents = gather_extents ctx ~off ~len in
  let result = Bytes.make len '\000' in
  (if extents <> [] then begin
     let me = Mpi.rank ctx.comm in
     let lo = List.fold_left (fun a (_, iv) -> min a iv.Interval.lo) max_int extents in
     let hi = List.fold_left (fun a (_, iv) -> max a iv.Interval.hi) 0 extents in
     let domains = domains ctx ~lo ~hi in
     (* Aggregators read their domain pieces in merged runs and serve them. *)
     if List.exists (fun (agg, _) -> agg = me) domains then begin
       let my_pieces =
         List.concat_map
           (fun (r, iv) ->
             List.filter_map
               (fun (agg, piece) -> if agg = me then Some (r, piece) else None)
               (pieces_of domains iv))
           extents
       in
       let runs = merge_runs (List.map snd my_pieces) in
       let buffers =
         List.map
           (fun run ->
             ( run,
               Posix.pread ctx.posix ~origin:Record.O_mpi (my_fd fh ctx)
                 ~off:run.Interval.lo (Interval.length run) ))
           runs
       in
       let serve (r, piece) =
         let run, buf =
           List.find (fun (run, _) -> Interval.overlaps run piece) buffers
         in
         let sub =
           Bytes.sub buf (piece.Interval.lo - run.Interval.lo)
             (Interval.length piece)
         in
         if r = me then
           Bytes.blit sub 0 result (piece.Interval.lo - off) (Bytes.length sub)
         else Mpi.send ctx.comm ~dst:r ~tag:exch_tag (Mpi.P_bytes sub)
       in
       List.iter serve my_pieces
     end;
     (* Every rank collects its pieces from the other aggregators. *)
     if len > 0 then
       List.iter
         (fun (agg, piece) ->
           if agg <> me then begin
             match Mpi.recv ctx.comm ~src:agg ~tag:exch_tag with
             | Mpi.P_bytes sub ->
               Bytes.blit sub 0 result (piece.Interval.lo - off)
                 (Bytes.length sub)
             | _ -> invalid_arg "Mpiio: bad read piece"
           end)
         (pieces_of domains (Interval.of_len off len))
   end);
  Mpi.barrier ctx.comm;
  result

let comm ctx = ctx.comm
let posix_ctx ctx = ctx.posix
let posix_fd ctx fh = my_fd fh ctx
let path fh = fh.path
