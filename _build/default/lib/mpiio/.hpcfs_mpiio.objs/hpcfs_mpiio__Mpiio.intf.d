lib/mpiio/mpiio.mli: Hpcfs_mpi Hpcfs_posix Hpcfs_trace
