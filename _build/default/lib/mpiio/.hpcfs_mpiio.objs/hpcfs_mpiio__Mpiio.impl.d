lib/mpiio/mpiio.ml: Array Bytes Fun Hashtbl Hpcfs_mpi Hpcfs_posix Hpcfs_sim Hpcfs_trace Hpcfs_util List Option
