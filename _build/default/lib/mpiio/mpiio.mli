(** Simulated MPI-IO over the instrumented POSIX layer.

    Provides the calls the study's applications use: collective open/close,
    independent [read_at]/[write_at], and collective [write_at_all] /
    [read_at_all] with ROMIO-style two-phase aggregation.  In collective
    data exchange, every rank's buffer is shipped to a small set of
    {e aggregator} ranks which perform large contiguous POSIX accesses —
    exactly the mechanism behind the paper's observation that FLASH-fbs
    funnels checkpoint I/O through six aggregators.

    Every MPI-IO call emits an [MPI-IO]-layer trace record; the POSIX
    operations it triggers underneath are traced with origin [O_mpi], so
    the analysis can attribute each access to the layer that issued it. *)

type ctx

val make_ctx :
  ?cb_nodes:int -> Hpcfs_posix.Posix.ctx -> Hpcfs_mpi.Mpi.comm -> ctx
(** [cb_nodes] is the number of aggregator ranks for collective buffering
    (default: [max 1 (size/12)], spaced evenly — about 6 aggregators in the
    paper's 64-rank runs). *)

type amode = { rd : bool; wr : bool; create : bool }

val mode_rdonly : amode
val mode_wronly_create : amode
val mode_rdwr_create : amode

type fh
(** An MPI file handle (collective state shared across ranks). *)

val file_open :
  ctx -> ?origin:Hpcfs_trace.Record.origin -> string -> amode -> fh
(** Collective: every rank of the communicator must call it. *)

val file_open_self :
  ctx -> ?origin:Hpcfs_trace.Record.origin -> string -> amode -> fh
(** Non-collective open over MPI_COMM_SELF (per-rank files, as HACC-IO's
    independent-I/O mode uses). *)

val file_close : ctx -> ?origin:Hpcfs_trace.Record.origin -> fh -> unit

val file_sync : ctx -> ?origin:Hpcfs_trace.Record.origin -> fh -> unit

val read_at :
  ctx -> ?origin:Hpcfs_trace.Record.origin -> fh -> off:int -> int -> bytes
(** Independent read at an explicit offset. *)

val write_at :
  ctx -> ?origin:Hpcfs_trace.Record.origin -> fh -> off:int -> bytes -> unit
(** Independent write at an explicit offset. *)

val write_at_all :
  ctx -> ?origin:Hpcfs_trace.Record.origin -> fh -> off:int -> bytes -> unit
(** Collective write: all ranks participate (pass an empty buffer to
    contribute nothing); data is exchanged to aggregators which issue the
    actual POSIX writes. *)

val read_at_all :
  ctx -> ?origin:Hpcfs_trace.Record.origin -> fh -> off:int -> int -> bytes
(** Collective read through the aggregators. *)

val aggregators : ctx -> int list
(** The aggregator ranks collective I/O funnels through. *)

val is_aggregator : ctx -> bool

(** {1 Accessors for layered libraries (HDF5 sits on top of MPI-IO)} *)

val comm : ctx -> Hpcfs_mpi.Mpi.comm
val posix_ctx : ctx -> Hpcfs_posix.Posix.ctx

val posix_fd : ctx -> fh -> int
(** Underlying POSIX descriptor of this rank's open of the file. *)

val path : fh -> string
