lib/mpi/mpi.ml: Array Hashtbl Hpcfs_sim List Queue
