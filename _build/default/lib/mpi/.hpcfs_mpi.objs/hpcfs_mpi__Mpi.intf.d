lib/mpi/mpi.mli:
