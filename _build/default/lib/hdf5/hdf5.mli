(** Simplified HDF5 model reproducing the library's I/O-visible behaviour.

    Only the behaviours that matter to the paper's analysis are modeled, but
    those are modeled carefully:

    - {b File structure}: a superblock and per-dataset object headers live in
      a metadata region at the start of the file; raw dataset data is
      allocated above it.  Metadata accesses are therefore the small
      low-offset reads/writes the paper identifies in Figure 2.
    - {b Metadata cache}: object creation and writes dirty metadata entries;
      the entries are written out only at [flush] (H5Fflush) or [close]
      (H5Fclose).  In parallel mode metadata writes are {e independent}
      (never funneled through the MPI-IO aggregators — cf. the ~30 ranks the
      paper observes writing metadata), and the writer of a given entry
      rotates across the metadata-participant ranks, so repeated flushes of
      a long-lived file produce exactly FLASH's WAW-S and WAW-D conflicts —
      which disappear under commit semantics because every metadata writer
      fsyncs as part of the flush.
    - {b Collective metadata mode}: when enabled, rank 0 performs all
      metadata writes (the paper's proposed one-line FLASH fix).
    - {b Figure 3 metadata footprint}: the library issues the POSIX
      metadata operations the paper attributes to HDF5 ([getcwd], [lstat],
      [fstat], [ftruncate], [access]) at the corresponding points.

    All trace records carry layer [L_hdf5] (API calls) or the HDF5 origin
    (POSIX calls issued internally). *)

type backend =
  | B_posix of Hpcfs_posix.Posix.ctx
      (** Serial HDF5: direct POSIX I/O, single process per file. *)
  | B_mpiio of Hpcfs_mpiio.Mpiio.ctx
      (** Parallel HDF5 over MPI-IO; data transfers may be collective. *)

type file
type dataset

val create :
  ?collective_metadata:bool -> backend -> string -> file
(** [H5Fcreate].  In parallel mode this is collective over the backend's
    communicator.  [collective_metadata] defaults to [false]. *)

val open_ : ?collective_metadata:bool -> backend -> string -> file
(** [H5Fopen] for reading: reads the superblock. *)

val close : file -> unit
(** [H5Fclose]: flushes dirty metadata, truncates the file to the end of
    allocation, and closes the underlying handle(s). *)

val flush : file -> unit
(** [H5Fflush]: write out dirty metadata and fsync — the commit operation
    the paper's footnote 2 recognizes. *)

val create_dataset : file -> string -> nbytes:int -> dataset
(** [H5Dcreate]: allocates an object header (metadata) and the data extent.
    Collective in parallel mode (all ranks must call with equal sizes). *)

val open_dataset : file -> string -> dataset
(** [H5Dopen]: reads the object header of an existing dataset. *)

val write_independent : dataset -> off:int -> bytes -> unit
(** [H5Dwrite] with independent transfer: writes [bytes] at [off] within
    the dataset's extent and dirties its object header. *)

val write_collective : dataset -> off:int -> bytes -> unit
(** [H5Dwrite] with collective transfer (requires the MPI-IO backend):
    funnels data through the aggregators. *)

val read : dataset -> off:int -> int -> bytes
(** [H5Dread] independent. *)

val read_collective : dataset -> off:int -> int -> bytes

val write_attribute : file -> string -> bytes -> unit
(** [H5Awrite]: small immediate metadata write into the header region (used
    by applications that update attributes mid-run). *)

val read_attribute : file -> string -> int -> bytes
(** [H5Aread]: small metadata read from the header region. *)

val dataset_offset : dataset -> int
(** Absolute file offset of the dataset's raw data (for tests). *)

val metadata_region_size : int
(** Bytes reserved at the start of the file for metadata (for tests). *)

val reset_registries : unit -> unit
(** Clear the cross-instance dataset/attribute layout registries (called by
    the application runner between independent runs). *)
