lib/hdf5/hdf5.ml: Array Bytes Char Hashtbl Hpcfs_mpi Hpcfs_mpiio Hpcfs_posix Hpcfs_sim Hpcfs_trace List Printf
