lib/hdf5/hdf5.mli: Hpcfs_mpiio Hpcfs_posix
