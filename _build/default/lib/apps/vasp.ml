(* VASP model: elastic-property calculation for GaAs.  Every rank writes
   its contiguous tile of the shared WAVECAR wavefunction file (N-1
   consecutive — the dominant output); rank 0 also appends small OSZICAR /
   OUTCAR log lines.  No conflicts. *)

module Posix = Hpcfs_posix.Posix

let scf_iterations = 12
let wavecar_tiles = 2

let run env =
  App_common.setup_dir env "/out/vasp";
  let oszicar = ref None in
  if App_common.is_rank0 env then
    oszicar := Some (Posix.fopen env.Runner.posix "/out/vasp/OSZICAR" "a");
  for it = 1 to scf_iterations do
    App_common.compute_allreduce env;
    if App_common.is_rank0 env then
      ignore
        (Posix.fwrite env.Runner.posix (Option.get !oszicar)
           (App_common.payload ~len:48 env it))
  done;
  if App_common.is_rank0 env then Posix.fclose env.Runner.posix (Option.get !oszicar);
  (* WAVECAR: per-rank contiguous tiles covering the file (the dominant
     output volume, hence the N-1 classification). *)

  let path = "/out/vasp/WAVECAR" in
  if App_common.is_rank0 env then
    Posix.close env.Runner.posix
      (Posix.openf env.Runner.posix path
         [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_TRUNC ]);
  App_common.compute env;
  let fd = Posix.openf env.Runner.posix path [ Posix.O_WRONLY ] in
  let tile = App_common.block * 8 in
  for t = 0 to wavecar_tiles - 1 do
    let off = (App_common.rank env * wavecar_tiles * tile) + (t * tile) in
    ignore
      (Posix.pwrite env.Runner.posix fd ~off (App_common.payload ~len:tile env t))
  done;
  Posix.close env.Runner.posix fd;
  if App_common.is_rank0 env then begin
    let fd =
      Posix.openf env.Runner.posix "/out/vasp/OUTCAR"
        [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_APPEND ]
    in
    ignore (Posix.write env.Runner.posix fd (App_common.payload ~len:256 env 99));
    Posix.close env.Runner.posix fd;
    ignore (Posix.stat env.Runner.posix "/out/vasp/WAVECAR")
  end
