(** HACC-IO model: per-rank particle files (N-N consecutive, no
    conflicts) via POSIX or MPI-IO over MPI_COMM_SELF. *)

val run_posix : Runner.env -> unit
val run_mpiio : Runner.env -> unit
