(** NWChem model: per-rank trajectory files with header rewrites and
    read-backs (Table 4: WAW-S and RAW-S). *)

val run : Runner.env -> unit
