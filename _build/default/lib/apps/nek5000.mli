(** Nek5000 model: rank-0 checkpoints every 100 of 1000 steps (1-1, no
    conflicts). *)

val run : Runner.env -> unit
