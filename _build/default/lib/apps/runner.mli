(** Harness that executes an application model under the simulator and
    captures everything the analysis needs: the multi-level trace, the MPI
    event log, and the PFS statistics. *)

type result = {
  records : Hpcfs_trace.Record.t list;  (** The trace, in time order. *)
  events : Hpcfs_mpi.Mpi.event list;  (** Communication log. *)
  stats : Hpcfs_fs.Pfs.stats;
  pfs : Hpcfs_fs.Pfs.t;  (** The file system after the run. *)
  nprocs : int;
}

type env = {
  comm : Hpcfs_mpi.Mpi.comm;
  posix : Hpcfs_posix.Posix.ctx;
  mpiio : Hpcfs_mpiio.Mpiio.ctx;
  nprocs : int;
  seed : int;
}
(** Shared by all ranks of a run; rank identity comes from the scheduler. *)

val run :
  ?semantics:Hpcfs_fs.Consistency.t ->
  ?local_order:bool ->
  ?nprocs:int ->
  ?seed:int ->
  ?cb_nodes:int ->
  (env -> unit) ->
  result
(** [run body] executes [body] on every rank (default 64 ranks, strong
    semantics, seed 42, 6 collective-buffering aggregators).  A barrier is
    executed before and after the body, mirroring the paper's
    clock-alignment barrier. *)

val rank_prng : env -> Hpcfs_util.Prng.t
(** Deterministic per-rank generator (distinct stream per rank and seed). *)
