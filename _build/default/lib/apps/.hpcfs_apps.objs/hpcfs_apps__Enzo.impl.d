lib/apps/enzo.ml: App_common Bytes Hpcfs_hdf5 Printf Runner
