lib/apps/runner.mli: Hpcfs_fs Hpcfs_mpi Hpcfs_mpiio Hpcfs_posix Hpcfs_trace Hpcfs_util
