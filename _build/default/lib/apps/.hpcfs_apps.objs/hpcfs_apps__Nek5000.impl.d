lib/apps/nek5000.ml: App_common Array Hpcfs_mpi Hpcfs_posix Printf Runner
