lib/apps/nwchem.mli: Runner
