lib/apps/nek5000.mli: Runner
