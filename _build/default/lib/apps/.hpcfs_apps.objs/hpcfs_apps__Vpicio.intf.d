lib/apps/vpicio.mli: Runner
