lib/apps/flash.mli: Runner
