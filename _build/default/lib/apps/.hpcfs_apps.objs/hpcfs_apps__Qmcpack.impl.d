lib/apps/qmcpack.ml: App_common Array Hpcfs_hdf5 Hpcfs_mpi Runner
