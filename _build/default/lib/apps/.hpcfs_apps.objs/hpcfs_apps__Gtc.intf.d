lib/apps/gtc.mli: Runner
