lib/apps/chombo.mli: Runner
