lib/apps/flash.ml: App_common Bytes Hpcfs_hdf5 Hpcfs_mpi Hpcfs_util Printf Runner
