lib/apps/registry.ml: Chombo Enzo Flash Gamess Gtc Haccio Lammps Lbann List Macsio Milc Nek5000 Nwchem Paradis Pf3d Qmcpack Runner String Vasp Vpicio
