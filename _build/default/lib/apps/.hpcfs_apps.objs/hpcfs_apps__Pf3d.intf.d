lib/apps/pf3d.mli: Runner
