lib/apps/haccio.mli: Runner
