lib/apps/paradis.mli: Runner
