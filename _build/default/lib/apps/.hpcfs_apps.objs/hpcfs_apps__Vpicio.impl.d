lib/apps/vpicio.ml: App_common Array Hpcfs_hdf5 Runner
