lib/apps/lammps.mli: Runner
