lib/apps/lammps.ml: App_common Array Bytes Hpcfs_formats Hpcfs_hdf5 Hpcfs_mpi Hpcfs_mpiio Hpcfs_posix Option Printf Runner
