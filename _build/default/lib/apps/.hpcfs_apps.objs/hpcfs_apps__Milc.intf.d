lib/apps/milc.mli: Runner
