lib/apps/macsio.ml: App_common Hpcfs_formats Printf Runner
