lib/apps/gamess.mli: Runner
