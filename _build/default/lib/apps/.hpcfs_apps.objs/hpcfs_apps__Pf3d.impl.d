lib/apps/pf3d.ml: App_common Hpcfs_posix Printf Runner
