lib/apps/registry.mli: Runner
