lib/apps/milc.ml: App_common Array Hpcfs_mpi Hpcfs_posix Printf Runner
