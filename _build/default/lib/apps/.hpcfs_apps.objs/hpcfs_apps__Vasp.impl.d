lib/apps/vasp.ml: App_common Hpcfs_posix Option Runner
