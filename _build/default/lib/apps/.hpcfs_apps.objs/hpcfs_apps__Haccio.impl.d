lib/apps/haccio.ml: App_common Hpcfs_mpiio Hpcfs_posix Printf Runner
