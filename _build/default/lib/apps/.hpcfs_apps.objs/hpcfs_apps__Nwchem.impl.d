lib/apps/nwchem.ml: App_common Hpcfs_posix Printf Runner
