lib/apps/validation.mli: Hpcfs_fs Runner
