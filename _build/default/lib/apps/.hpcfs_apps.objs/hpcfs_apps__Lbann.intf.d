lib/apps/lbann.mli: Runner
