lib/apps/vasp.mli: Runner
