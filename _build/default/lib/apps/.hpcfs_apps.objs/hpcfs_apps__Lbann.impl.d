lib/apps/lbann.ml: App_common Bytes Hpcfs_posix Runner
