lib/apps/app_common.mli: Hpcfs_util Runner
