lib/apps/macsio.mli: Runner
