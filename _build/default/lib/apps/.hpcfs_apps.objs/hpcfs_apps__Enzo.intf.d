lib/apps/enzo.mli: Runner
