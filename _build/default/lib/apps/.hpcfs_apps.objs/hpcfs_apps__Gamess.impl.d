lib/apps/gamess.ml: App_common Hpcfs_posix Printf Runner
