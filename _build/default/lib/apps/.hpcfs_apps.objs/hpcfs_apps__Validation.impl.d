lib/apps/validation.ml: Digest Hpcfs_fs List Runner
