lib/apps/qmcpack.mli: Runner
