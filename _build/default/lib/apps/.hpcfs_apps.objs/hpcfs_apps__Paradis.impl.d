lib/apps/paradis.ml: App_common Hpcfs_hdf5 Hpcfs_posix Option Printf Runner
