lib/apps/gtc.ml: App_common Hpcfs_posix Option Printf Runner
