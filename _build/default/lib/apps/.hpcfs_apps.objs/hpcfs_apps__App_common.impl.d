lib/apps/app_common.ml: Bytes Char Hpcfs_fs Hpcfs_mpi Hpcfs_posix Hpcfs_sim Hpcfs_util List Runner String
