lib/apps/chombo.ml: App_common Hpcfs_hdf5 Printf Runner
