lib/apps/runner.ml: Hpcfs_fs Hpcfs_hdf5 Hpcfs_mpi Hpcfs_mpiio Hpcfs_posix Hpcfs_sim Hpcfs_trace Hpcfs_util
