(* pF3D-IO model: one checkpoint step, each rank writing its own file with
   large consecutive writes (N-N).  After writing, the rank seeks back and
   re-reads the self-describing header it wrote — the RAW-S of Table 4. *)

module Posix = Hpcfs_posix.Posix

let chunks = 32

let run env =
  App_common.setup_dir env "/out/pf3d";
  let path =
    Printf.sprintf "/out/pf3d/checkpoint-%05d.pdb" (App_common.rank env)
  in
  let fd =
    Posix.openf env.Runner.posix path
      [ Posix.O_RDWR; Posix.O_CREAT; Posix.O_TRUNC ]
  in
  (* Self-describing header, then the checkpoint payload. *)
  ignore (Posix.write env.Runner.posix fd (App_common.payload env 0));
  for c = 1 to chunks do
    ignore
      (Posix.write env.Runner.posix fd
         (App_common.payload ~len:(App_common.block * 4) env c))
  done;
  (* Verify the header (PDB libraries re-read the symbol table). *)
  ignore (Posix.lseek env.Runner.posix fd 0 Posix.SEEK_SET);
  ignore (Posix.read env.Runner.posix fd App_common.block);
  Posix.close env.Runner.posix fd
