(** MILC-QCD model: gauge-configuration saves, serial (1-1) or parallel
    (N-1 strided time-slice chunks). *)

val run_serial : Runner.env -> unit
val run_parallel : Runner.env -> unit
