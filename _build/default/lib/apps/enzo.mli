(** ENZO model: collapse test writing per-rank HDF5 files (N-N) with an
    attribute read-back giving the RAW-S of Table 4. *)

val run : Runner.env -> unit
