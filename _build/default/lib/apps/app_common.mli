(** Helpers shared by the application models. *)

val block : int
(** Default per-rank payload of one write (bytes). *)

val rank : Runner.env -> int
val is_rank0 : Runner.env -> bool

val payload : ?len:int -> Runner.env -> int -> bytes
(** Deterministic rank- and tag-dependent buffer contents. *)

val compute : Runner.env -> unit
(** One synchronized computation step (a barrier): separates I/O phases
    and supplies the happens-before edges that make conflicts race-free. *)

val compute_allreduce : Runner.env -> unit
(** A computation step that also reduces a value (error monitors etc.). *)

val jitter : Runner.env -> Hpcfs_util.Prng.t -> max_slots:int -> unit
(** Random scheduling delay, desynchronizing ranks so independent I/O
    interleaves out of rank order (the global randomness of Figure 1). *)

val setup_dir : Runner.env -> string -> unit
(** Create a directory tree (rank 0, traced), then synchronize. *)

val prepare_input : Runner.env -> string -> int -> unit
(** Materialize an input file directly in the PFS, bypassing the tracer
    (input staging is not part of the studied I/O). *)
