(* MILC-QCD model: lattice QCD gauge-configuration saves.  With
   save_serial (the studied configuration) rank 0 gathers and writes the
   lattice alone (1-1 consecutive); with save_parallel every rank writes
   its own time-slice chunks into the shared file (N-1 strided). *)

module Mpi = Hpcfs_mpi.Mpi
module Posix = Hpcfs_posix.Posix

let trajectories = 4
let time_slices = 4

let run_serial env =
  App_common.setup_dir env "/out/milc";
  for traj = 1 to trajectories do
    App_common.compute_allreduce env;
    let mine = App_common.payload env traj in
    match Mpi.gather env.Runner.comm ~root:0 (Mpi.P_bytes mine) with
    | Some blocks ->
      let fd =
        Posix.openf env.Runner.posix
          (Printf.sprintf "/out/milc/lat.sample.l8888.%d" traj)
          [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_TRUNC ]
      in
      Array.iter
        (function
          | Mpi.P_bytes b -> ignore (Posix.write env.Runner.posix fd b)
          | _ -> ())
        blocks;
      Posix.close env.Runner.posix fd
    | None -> ()
  done

let run_parallel env =
  App_common.setup_dir env "/out/milc";
  let nprocs = env.Runner.nprocs in
  for traj = 1 to trajectories do
    App_common.compute_allreduce env;
    let path = Printf.sprintf "/out/milc/lat.sample.l8888.%d" traj in
    if App_common.is_rank0 env then
      Posix.close env.Runner.posix
        (Posix.openf env.Runner.posix path
           [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_TRUNC ]);
    App_common.compute env;
    let fd = Posix.openf env.Runner.posix path [ Posix.O_WRONLY ] in
    for t = 0 to time_slices - 1 do
      let off =
        (t * App_common.block * nprocs)
        + (App_common.block * App_common.rank env)
      in
      ignore (Posix.pwrite env.Runner.posix fd ~off (App_common.payload env t))
    done;
    Posix.close env.Runner.posix fd
  done
