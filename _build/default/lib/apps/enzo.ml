(* ENZO model: non-cosmological collapse test.  Each rank writes its own
   HDF5 .cpu file (N-N consecutive) and reads back an attribute it just
   wrote without an intervening flush — the RAW-S of Table 4, present under
   both session and commit semantics. *)

module Hdf5 = Hpcfs_hdf5.Hdf5

let grids_per_rank = 4

let run env =
  App_common.setup_dir env "/out/enzo";
  for _cycle = 1 to 3 do
    App_common.compute_allreduce env
  done;
  let path =
    Printf.sprintf "/out/enzo/DD0001.cpu%04d" (App_common.rank env)
  in
  let file = Hdf5.create (Hdf5.B_posix env.Runner.posix) path in
  for g = 0 to grids_per_rank - 1 do
    let ds =
      Hdf5.create_dataset file
        (Printf.sprintf "Grid%08d" g)
        ~nbytes:(App_common.block * 4)
    in
    Hdf5.write_independent ds ~off:0
      (App_common.payload ~len:(App_common.block * 4) env g)
  done;
  Hdf5.write_attribute file "Time" (Bytes.make 32 't');
  Hdf5.write_attribute file "CycleNumber" (Bytes.make 8 'c');
  (* Read-after-write on the same process: ENZO re-reads the header
     attribute it just wrote while assembling the hierarchy file. *)
  ignore (Hdf5.read_attribute file "Time" 32);
  Hdf5.close file
