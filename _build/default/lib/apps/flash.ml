(* FLASH 4.4 model: 2D Sedov explosion, 100 time steps, checkpoint (and
   plot file) every 20 steps, HDF5 I/O.

   The defining behaviour (Section 6.3): during a checkpoint FLASH calls
   H5Fflush after writing each dataset, so the HDF5 metadata region at the
   head of the still-open file is rewritten flush after flush — the only
   cross-process conflict of the study, which commit semantics (the fsync
   inside H5Fflush) resolves.  With a fixed block size (fbs) the data
   transfers are collective and funnel through the MPI-IO aggregators; with
   a dynamic block size (nofbs) every rank writes independently. *)

module Mpi = Hpcfs_mpi.Mpi
module Hdf5 = Hpcfs_hdf5.Hdf5
module Prng = Hpcfs_util.Prng

let nsteps = 100
let checkpoint_interval = 20
let datasets_per_checkpoint = 10

let checkpoint env prng ~collective ~collective_metadata ~flush_per_dataset
    ~index =
  let nprocs = env.Runner.nprocs in
  let backend = Hdf5.B_mpiio env.Runner.mpiio in
  let path = Printf.sprintf "/out/flash/sedov_hdf5_chk_%04d" index in
  let file = Hdf5.create ~collective_metadata backend path in
  for d = 0 to datasets_per_checkpoint - 1 do
    let name = Printf.sprintf "unk%02d" d in
    let ds =
      Hdf5.create_dataset file name ~nbytes:(App_common.block * nprocs)
    in
    let off = App_common.block * App_common.rank env in
    let data = App_common.payload env (d + (100 * index)) in
    if collective then begin
      (* Collective buffering proceeds in rounds bounded by the collective
         buffer size; each round is one write_at_all over a slice. *)
      let rounds = 4 in
      let slice = App_common.block / rounds in
      for round = 0 to rounds - 1 do
        Hdf5.write_collective ds
          ~off:(off + (round * slice))
          (Bytes.sub data (round * slice) slice)
      done
    end
    else begin
      App_common.jitter env prng ~max_slots:40;
      Hdf5.write_independent ds ~off data
    end;
    if flush_per_dataset then Hdf5.flush file
  done;
  Hdf5.close file

(* Plot file: data written by rank 0 only, but metadata writes still spread
   over the participant ranks (Figure 2(c)). *)
let plot env ~collective_metadata ~index =
  let nprocs = env.Runner.nprocs in
  let backend = Hdf5.B_mpiio env.Runner.mpiio in
  let path = Printf.sprintf "/out/flash/sedov_hdf5_plt_cnt_%04d" index in
  let file = Hdf5.create ~collective_metadata backend path in
  let ds =
    Hdf5.create_dataset file "dens" ~nbytes:(App_common.block * nprocs / 4)
  in
  if App_common.is_rank0 env then
    Hdf5.write_independent ds ~off:0
      (App_common.payload ~len:(App_common.block * nprocs / 4) env index);
  Hdf5.flush file;
  Hdf5.close file

let run ?(collective_metadata = false) ~fbs env =
  let prng = Runner.rank_prng env in
  App_common.setup_dir env "/out/flash";
  let index = ref 0 in
  for step = 1 to nsteps do
    App_common.compute_allreduce env;
    if step mod checkpoint_interval = 0 then begin
      checkpoint env prng ~collective:fbs ~collective_metadata
        ~flush_per_dataset:true ~index:!index;
      plot env ~collective_metadata ~index:!index;
      incr index
    end
  done;
  ignore (Mpi.size env.Runner.comm)

let run_fbs env = run ~fbs:true env
let run_nofbs env = run ~fbs:false env

(* The paper's proposed one-line fix: enable collective metadata mode. *)
let run_fbs_collective_metadata env = run ~collective_metadata:true ~fbs:true env
