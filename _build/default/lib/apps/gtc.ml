(* GTC model: gyrokinetic toroidal code, rank 0 appending diagnostics to
   history.out every interval and writing restart files (1-1 consecutive,
   no conflicts). *)

module Posix = Hpcfs_posix.Posix

let nsteps = 200
let history_interval = 10
let restart_interval = 50

let run env =
  App_common.setup_dir env "/out/gtc";
  let hist = ref None in
  if App_common.is_rank0 env then
    hist :=
      Some
        (Posix.fopen env.Runner.posix "/out/gtc/history.out" "a");
  for step = 1 to nsteps do
    App_common.compute env;
    if App_common.is_rank0 env then begin
      if step mod history_interval = 0 then
        ignore
          (Posix.fwrite env.Runner.posix (Option.get !hist)
             (App_common.payload ~len:64 env step));
      if step mod restart_interval = 0 then begin
        let fd =
          Posix.fopen env.Runner.posix
            (Printf.sprintf "/out/gtc/DATA_RESTART.%05d" step)
            "w"
        in
        for chunk = 0 to 7 do
          ignore
            (Posix.fwrite env.Runner.posix fd (App_common.payload env chunk))
        done;
        Posix.fclose env.Runner.posix fd
      end
    end
  done;
  if App_common.is_rank0 env then Posix.fclose env.Runner.posix (Option.get !hist)
