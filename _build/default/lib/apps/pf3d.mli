(** pF3D-IO model: one checkpoint step per rank with a header
    verification read (Table 4: RAW-S). *)

val run : Runner.env -> unit
