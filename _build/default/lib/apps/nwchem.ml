(* NWChem model: gas-phase molecular dynamics writing per-rank trajectory
   files (N-N consecutive).  The trajectory header is rewritten after every
   print interval and read back for the restart bookkeeping, giving the
   WAW-S and RAW-S of Table 4. *)

module Posix = Hpcfs_posix.Posix

let equilibration = 5
let data_steps = 30
let print_interval = 5

let run env =
  App_common.setup_dir env "/out/nwchem";
  for _ = 1 to equilibration do
    App_common.compute env
  done;
  let path =
    Printf.sprintf "/out/nwchem/benzi.trj.%04d" (App_common.rank env)
  in
  let fd =
    Posix.openf env.Runner.posix path
      [ Posix.O_RDWR; Posix.O_CREAT; Posix.O_TRUNC ]
  in
  ignore (Posix.write env.Runner.posix fd (App_common.payload env 0));
  for step = 1 to data_steps do
    App_common.compute env;
    (* Solute coordinates appended every step. *)
    ignore (Posix.write env.Runner.posix fd (App_common.payload env step));
    if step mod print_interval = 0 then begin
      let posix = env.Runner.posix in
      (* Rewrite the frame-count header (WAW-S), read it back (RAW-S),
         return to the end of the trajectory. *)
      ignore (Posix.lseek posix fd 0 Posix.SEEK_SET);
      ignore (Posix.write posix fd (App_common.payload env (1000 + step)));
      ignore (Posix.lseek posix fd 0 Posix.SEEK_SET);
      ignore (Posix.read posix fd App_common.block);
      ignore (Posix.lseek posix fd 0 Posix.SEEK_END)
    end
  done;
  Posix.close env.Runner.posix fd
