(* QMCPACK model: diffusion Monte Carlo of a water molecule, 100 warmup +
   40 computation steps, checkpointing every 20 steps into an HDF5 config
   file written by rank 0 alone (1-1 consecutive, no conflicts). *)

module Mpi = Hpcfs_mpi.Mpi
module Hdf5 = Hpcfs_hdf5.Hdf5

let warmup = 100
let steps = 40
let checkpoint_interval = 20

let checkpoint env =
  let mine = App_common.payload env 7 in
  match Mpi.gather env.Runner.comm ~root:0 (Mpi.P_bytes mine) with
  | Some blocks ->
    let file =
      Hdf5.create (Hdf5.B_posix env.Runner.posix) "/out/qmcpack/qmc.s000.config.h5"
    in
    let ds =
      Hdf5.create_dataset file "walkers"
        ~nbytes:(App_common.block * Array.length blocks)
    in
    Array.iteri
      (fun r p ->
        match p with
        | Mpi.P_bytes b -> Hdf5.write_independent ds ~off:(r * App_common.block) b
        | _ -> ())
      blocks;
    Hdf5.close file
  | None -> ()

let run env =
  App_common.setup_dir env "/out/qmcpack";
  for _ = 1 to warmup / 10 do
    App_common.compute env
  done;
  for step = 1 to steps do
    if step mod 4 = 0 then App_common.compute_allreduce env;
    if step mod checkpoint_interval = 0 then checkpoint env
  done
