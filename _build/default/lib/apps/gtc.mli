(** GTC model: rank-0 history appends and restart files (1-1, no
    conflicts). *)

val run : Runner.env -> unit
