(** ParaDiS model: shared strided restart dumps (N-1 strided, no
    conflicts) through POSIX or parallel HDF5. *)

val run_posix : Runner.env -> unit
val run_hdf5 : Runner.env -> unit
