(** MACSio model: Silo PMPIO multi-file dumps (N-M strided; WAW-S from
    the double table-of-contents rewrite). *)

val run : Runner.env -> unit
