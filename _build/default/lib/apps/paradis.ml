(* ParaDiS model: dislocation dynamics restart dumps.  All ranks write
   disjoint strided segments of one shared restart file (N-1 strided),
   either directly with POSIX pwrite or through parallel HDF5 (which adds
   the lstat/fstat/ftruncate metadata operations of Figure 3).  No
   conflicts in either mode. *)

module Posix = Hpcfs_posix.Posix
module Hdf5 = Hpcfs_hdf5.Hdf5

let segments = 3

let run_posix env =
  App_common.setup_dir env "/out/paradis";
  let nprocs = env.Runner.nprocs in
  App_common.compute_allreduce env;
  let fd = ref None in
  if App_common.is_rank0 env then
    fd :=
      Some
        (Posix.openf env.Runner.posix "/out/paradis/rs0001.data"
           [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_TRUNC ]);
  App_common.compute env;
  if not (App_common.is_rank0 env) then
    fd :=
      Some
        (Posix.openf env.Runner.posix "/out/paradis/rs0001.data"
           [ Posix.O_WRONLY ]);
  let fd = Option.get !fd in
  for seg = 0 to segments - 1 do
    let base = seg * App_common.block * nprocs in
    let off = base + (App_common.block * App_common.rank env) in
    ignore
      (Posix.pwrite env.Runner.posix fd ~off (App_common.payload env seg))
  done;
  Posix.close env.Runner.posix fd;
  App_common.compute env

let run_hdf5 env =
  App_common.setup_dir env "/out/paradis";
  let nprocs = env.Runner.nprocs in
  App_common.compute_allreduce env;
  let file =
    Hdf5.create (Hdf5.B_mpiio env.Runner.mpiio) "/out/paradis/rs0001.h5"
  in
  for seg = 0 to segments - 1 do
    let ds =
      Hdf5.create_dataset file
        (Printf.sprintf "nodes%d" seg)
        ~nbytes:(App_common.block * nprocs)
    in
    Hdf5.write_independent ds
      ~off:(App_common.block * App_common.rank env)
      (App_common.payload env seg)
  done;
  Hdf5.close file;
  App_common.compute env
