(* LAMMPS model: 2D LJ flow, 100 steps, atom-coordinate dump every 20 steps
   through five alternative I/O paths (Table 5).  The POSIX, MPI-IO and
   HDF5 paths are conflict-free; the NetCDF and ADIOS paths carry the
   library-metadata overwrites of Table 4 (WAW-S). *)

module Mpi = Hpcfs_mpi.Mpi
module Posix = Hpcfs_posix.Posix
module Mpiio = Hpcfs_mpiio.Mpiio
module Hdf5 = Hpcfs_hdf5.Hdf5
module Netcdf = Hpcfs_formats.Netcdf
module Adios = Hpcfs_formats.Adios

let nsteps = 100
let dump_interval = 20

let steps env ~on_dump =
  let snap = ref 0 in
  for step = 1 to nsteps do
    App_common.compute env;
    if step mod dump_interval = 0 then begin
      on_dump !snap;
      incr snap
    end
  done

(* Rank 0 gathers all coordinates and appends them to the dump file. *)
let run_posix env =
  App_common.setup_dir env "/out/lammps";
  let fd = ref None in
  if App_common.is_rank0 env then
    fd :=
      Some
        (Posix.openf env.Runner.posix "/out/lammps/dump.lammpstrj"
           [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_APPEND ]);
  steps env ~on_dump:(fun snap ->
      let mine = App_common.payload env snap in
      match Mpi.gather env.Runner.comm ~root:0 (Mpi.P_bytes mine) with
      | Some blocks ->
        let fd = Option.get !fd in
        Array.iter
          (function
            | Mpi.P_bytes b -> ignore (Posix.write env.Runner.posix fd b)
            | _ -> ())
          blocks
      | None -> ());
  if App_common.is_rank0 env then Posix.close env.Runner.posix (Option.get !fd)

(* Shared dump file, collective writes: only the aggregators reach the PFS. *)
let run_mpiio env =
  App_common.setup_dir env "/out/lammps";
  let fh =
    Mpiio.file_open env.Runner.mpiio "/out/lammps/dump.mpiio"
      Mpiio.mode_wronly_create
  in
  let nprocs = env.Runner.nprocs in
  steps env ~on_dump:(fun snap ->
      let base = snap * App_common.block * nprocs in
      let off = base + (App_common.block * App_common.rank env) in
      Mpiio.write_at_all env.Runner.mpiio fh ~off (App_common.payload env snap));
  Mpiio.file_close env.Runner.mpiio fh

(* Rank 0 writes one HDF5 file with a dataset per snapshot. *)
let run_hdf5 env =
  App_common.setup_dir env "/out/lammps";
  let nprocs = env.Runner.nprocs in
  let file = ref None in
  if App_common.is_rank0 env then
    file :=
      Some (Hdf5.create (Hdf5.B_posix env.Runner.posix) "/out/lammps/dump.h5");
  steps env ~on_dump:(fun snap ->
      let mine = App_common.payload env snap in
      match Mpi.gather env.Runner.comm ~root:0 (Mpi.P_bytes mine) with
      | Some blocks ->
        let file = Option.get !file in
        let ds =
          Hdf5.create_dataset file
            (Printf.sprintf "snapshot%02d" snap)
            ~nbytes:(App_common.block * nprocs)
        in
        Array.iteri
          (fun r p ->
            match p with
            | Mpi.P_bytes b ->
              Hdf5.write_independent ds ~off:(r * App_common.block) b
            | _ -> ())
          blocks
      | None -> ());
  if App_common.is_rank0 env then Hdf5.close (Option.get !file)

(* Rank 0 writes a classic-format NetCDF dump: the numrecs rewrite after
   each appended record is the WAW-S of Table 4. *)
let run_netcdf env =
  App_common.setup_dir env "/out/lammps";
  let nprocs = env.Runner.nprocs in
  let nc = ref None in
  if App_common.is_rank0 env then
    nc :=
      Some
        (Netcdf.create env.Runner.posix "/out/lammps/dump.nc"
           ~header_bytes:1024);
  steps env ~on_dump:(fun snap ->
      let mine = App_common.payload env snap in
      match Mpi.gather env.Runner.comm ~root:0 (Mpi.P_bytes mine) with
      | Some blocks ->
        let buf = Bytes.create (App_common.block * nprocs) in
        Array.iteri
          (fun r p ->
            match p with
            | Mpi.P_bytes b ->
              Bytes.blit b 0 buf (r * App_common.block) (Bytes.length b)
            | _ -> ())
          blocks;
        Netcdf.append_record (Option.get !nc) buf;
        ignore snap
      | None -> ());
  if App_common.is_rank0 env then Netcdf.close (Option.get !nc)

(* BP4-style output: substream aggregators plus rank 0's md.idx single-byte
   overwrite (the WAW-S of Table 4). *)
let run_adios env =
  App_common.setup_dir env "/out/lammps";
  let bp =
    Adios.open_write env.Runner.posix env.Runner.comm "/out/lammps/dump.bp"
      ~substreams:8
  in
  steps env ~on_dump:(fun snap ->
      Adios.write_step bp (App_common.payload env snap));
  Adios.close bp
