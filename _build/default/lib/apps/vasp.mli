(** VASP model: rank-tiled WAVECAR (the dominant output: N-1
    consecutive) plus rank-0 logs; no conflicts. *)

val run : Runner.env -> unit
