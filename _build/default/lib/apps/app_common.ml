(* Shared helpers for the application models. *)

module Sched = Hpcfs_sim.Sched
module Mpi = Hpcfs_mpi.Mpi
module Posix = Hpcfs_posix.Posix
module Pfs = Hpcfs_fs.Pfs
module Prng = Hpcfs_util.Prng

(* Default per-rank payload of one write: real applications write MBs; the
   analysis only cares about extent shapes, so payloads are scaled down. *)
let block = 512

let rank env = Mpi.rank env.Runner.comm
let is_rank0 env = rank env = 0

let payload ?(len = block) env tag =
  let r = rank env in
  Bytes.init len (fun i -> Char.chr ((tag + r + i) land 0xff))

(* One synchronized computation step: the communication that (a) separates
   I/O phases and (b) provides the happens-before edges that make the
   detected conflicts race-free. *)
let compute env = Mpi.barrier env.Runner.comm

let compute_allreduce env =
  ignore (Mpi.allreduce env.Runner.comm Mpi.Sum (rank env))

(* Random scheduling jitter: desynchronizes ranks so that independent I/O
   interleaves out of rank order, producing the random global patterns the
   paper observes for FLASH-nofbs and LBANN. *)
let jitter env prng ~max_slots =
  ignore env;
  let n = Prng.int prng (max_slots + 1) in
  for _ = 1 to n do
    Sched.yield ()
  done

(* Create a directory tree (rank 0 only, traced), then synchronize. *)
let setup_dir env path =
  if is_rank0 env then begin
    let components = String.split_on_char '/' path in
    let _ =
      List.fold_left
        (fun prefix c ->
          if c = "" then prefix
          else begin
            let dir = prefix ^ "/" ^ c in
            if not (Posix.access env.Runner.posix dir) then
              Posix.mkdir env.Runner.posix dir;
            dir
          end)
        "" components
    in
    ()
  end;
  Mpi.barrier env.Runner.comm

(* Materialize an input file directly in the PFS, bypassing the tracer (the
   paper does not trace input staging either). *)
let prepare_input env path size =
  if is_rank0 env then begin
    let ns = Pfs.namespace (Posix.pfs env.Runner.posix) in
    let rec ensure_dirs prefix = function
      | [] | [ _ ] -> ()
      | c :: rest ->
        let dir = prefix ^ "/" ^ c in
        if not (Hpcfs_fs.Namespace.exists ns dir) then
          Hpcfs_fs.Namespace.mkdir ns ~time:(Sched.now ()) dir;
        ensure_dirs dir rest
    in
    ensure_dirs "" (List.filter (fun c -> c <> "") (String.split_on_char '/' path));
    let pfs = Posix.pfs env.Runner.posix in
    let time = Sched.tick () in
    ignore (Pfs.open_file pfs ~time ~rank:0 ~create:true path);
    let chunk = 4096 in
    let rec fill off =
      if off < size then begin
        let len = min chunk (size - off) in
        Pfs.write pfs ~time:(Sched.tick ()) ~rank:0 path ~off
          (Bytes.make len 'd');
        fill (off + len)
      end
    in
    fill 0;
    Pfs.close_file pfs ~time:(Sched.tick ()) ~rank:0 path
  end;
  Mpi.barrier env.Runner.comm
