(* Nek5000 model: doubly-periodic eddy solution, 1000 steps with an error
   monitor, checkpoint every 100 steps written by rank 0 (1-1 consecutive,
   no conflicts). *)

module Mpi = Hpcfs_mpi.Mpi
module Posix = Hpcfs_posix.Posix

let nsteps = 1000
let checkpoint_interval = 100

let run env =
  App_common.setup_dir env "/out/nek5000";
  let chk = ref 0 in
  for step = 1 to nsteps do
    (* The eddy case monitors the exact-solution error every step. *)
    if step mod 10 = 0 then App_common.compute_allreduce env
    else App_common.compute env;
    if step mod checkpoint_interval = 0 then begin
      let mine = App_common.payload env step in
      (match Mpi.gather env.Runner.comm ~root:0 (Mpi.P_bytes mine) with
      | Some blocks ->
        let fd =
          Posix.openf env.Runner.posix
            (Printf.sprintf "/out/nek5000/eddy_uv0.f%05d" !chk)
            [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_TRUNC ]
        in
        Array.iter
          (function
            | Mpi.P_bytes b -> ignore (Posix.write env.Runner.posix fd b)
            | _ -> ())
          blocks;
        Posix.close env.Runner.posix fd
      | None -> ());
      incr chk
    end
  done
