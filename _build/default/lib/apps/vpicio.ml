(* VPIC-IO model: a 1D particle array with eight variables per particle,
   written collectively through parallel HDF5 — the data funnels through
   the MPI-IO aggregators (M-1 strided cyclic). *)

module Hdf5 = Hpcfs_hdf5.Hdf5

let variables = 8

let run env =
  App_common.setup_dir env "/out/vpic";
  let file =
    Hdf5.create (Hdf5.B_mpiio env.Runner.mpiio) "/out/vpic/particle.h5part"
  in
  let nprocs = env.Runner.nprocs in
  let vars = [| "x"; "y"; "z"; "px"; "py"; "pz"; "id1"; "id2" |] in
  for v = 0 to variables - 1 do
    let ds =
      Hdf5.create_dataset file vars.(v) ~nbytes:(App_common.block * nprocs)
    in
    Hdf5.write_collective ds
      ~off:(App_common.block * App_common.rank env)
      (App_common.payload env v)
  done;
  Hdf5.close file
