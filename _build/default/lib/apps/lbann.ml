(* LBANN model: autoencoder training on CIFAR-10.  The defining behaviour
   is read-intensive input: every rank reads the entire dataset file from
   beginning to end (N-1, locally consecutive), with the parallel reads
   interleaving into a far more random global pattern at the PFS. *)

module Posix = Hpcfs_posix.Posix

let dataset = "/data/cifar10/data_batch_all.bin"
let dataset_size = 64 * 4096
let chunk = 4096

let run env =
  App_common.prepare_input env dataset dataset_size;
  let prng = Runner.rank_prng env in
  (* The data reader stats the dataset to size its buffers. *)
  ignore (Posix.stat env.Runner.posix dataset);
  let fd = Posix.openf env.Runner.posix dataset [ Posix.O_RDONLY ] in
  let rec read_all remaining =
    if remaining > 0 then begin
      App_common.jitter env prng ~max_slots:6;
      let got = Bytes.length (Posix.read env.Runner.posix fd chunk) in
      if got > 0 then read_all (remaining - got)
    end
  in
  read_all dataset_size;
  Posix.close env.Runner.posix fd;
  (* A few training epochs' worth of synchronization. *)
  for _ = 1 to 5 do
    App_common.compute_allreduce env
  done
