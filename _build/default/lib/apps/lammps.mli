(** LAMMPS model: LJ flow with an atom dump every 20 steps through five
    alternative I/O paths (Table 5).  POSIX/MPI-IO/HDF5 are conflict-free;
    NetCDF and ADIOS carry library-metadata overwrites (Table 4). *)

val run_posix : Runner.env -> unit
val run_mpiio : Runner.env -> unit
val run_hdf5 : Runner.env -> unit
val run_netcdf : Runner.env -> unit
val run_adios : Runner.env -> unit
