(** Chombo model: AMR Poisson plot file via parallel HDF5 with
    independent strided writes (N-1 strided, no conflicts). *)

val run : Runner.env -> unit
