(* MACSio model: ALE3D-like proxy I/O through Silo in PMPIO multi-file
   mode: all ranks write, grouped into a few shared files (N-M strided),
   with Silo's double table-of-contents rewrite per turn (WAW-S). *)

module Silo = Hpcfs_formats.Silo

let dumps = 2

(* Part files per dump: scales with the run so groups always share a file
   (MACSio's -parallel_file_mode MIF behaviour). *)
let files env = max 2 (env.Runner.nprocs / 8)

let run env =
  App_common.setup_dir env "/out/macsio";
  for dump = 0 to dumps - 1 do
    App_common.compute env;
    let silo =
      Silo.create env.Runner.posix env.Runner.comm ~nfiles:(files env)
        ~basename:(Printf.sprintf "/out/macsio/macsio_silo_%03d" dump)
    in
    Silo.write_blocks silo ~block:(App_common.payload ~len:(App_common.block * 2) env dump)
  done
