(* GAMESS model: closed-shell SCF test.  Only a subset of ranks performs
   I/O (M-M): each I/O rank keeps a scratch .F10 integral file, appending
   batches and rewriting the first record's bookkeeping block (WAW-S). *)

module Posix = Hpcfs_posix.Posix

let io_stride = 4 (* one I/O rank per group of 4 *)
let batches = 12

let is_io_rank env = App_common.rank env mod io_stride = 0

let run env =
  App_common.setup_dir env "/out/gamess";
  if is_io_rank env then begin
    let path =
      Printf.sprintf "/out/gamess/scratch.F10.%04d" (App_common.rank env)
    in
    let fd =
      Posix.openf env.Runner.posix path
        [ Posix.O_RDWR; Posix.O_CREAT; Posix.O_TRUNC ]
    in
    ignore (Posix.write env.Runner.posix fd (App_common.payload env 0));
    for b = 1 to batches do
      ignore (Posix.write env.Runner.posix fd (App_common.payload env b));
      if b mod 4 = 0 then begin
        (* Update the record-0 directory block, then continue appending. *)
        ignore (Posix.lseek env.Runner.posix fd 0 Posix.SEEK_SET);
        ignore (Posix.write env.Runner.posix fd (App_common.payload env (b + 100)));
        ignore (Posix.lseek env.Runner.posix fd 0 Posix.SEEK_END)
      end
    done;
    Posix.close env.Runner.posix fd
  end;
  for _ = 1 to 3 do
    App_common.compute env
  done
