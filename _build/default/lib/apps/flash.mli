(** FLASH 4.4 model: Sedov explosion with HDF5 checkpoints and plot files,
    flushing metadata after every dataset — the source of the study's only
    cross-process conflicts (Section 6.3). *)

val run_fbs : Runner.env -> unit
(** Fixed block size: collective data transfers through the MPI-IO
    aggregators (Table 3: M-1 strided cyclic). *)

val run_nofbs : Runner.env -> unit
(** Dynamic block size: independent transfers from every rank
    (Table 3: N-1 strided). *)

val run_fbs_collective_metadata : Runner.env -> unit
(** The paper's proposed fix: rank 0 performs all metadata I/O, removing
    the cross-process conflicts. *)
