(** VPIC-IO model: eight particle variables written collectively through
    parallel HDF5 (M-1 strided cyclic, no conflicts). *)

val run : Runner.env -> unit
