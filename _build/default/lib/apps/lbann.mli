(** LBANN model: read-intensive CIFAR-10 training input — every rank
    reads the whole dataset (N-1; locally consecutive, globally random). *)

val run : Runner.env -> unit

val dataset : string
(** Path of the staged input file. *)
