(** GAMESS model: a subset of ranks maintaining scratch integral files
    (M-M; WAW-S from record-0 rewrites). *)

val run : Runner.env -> unit

val io_stride : int
(** One of every [io_stride] ranks performs I/O. *)
