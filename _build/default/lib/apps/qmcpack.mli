(** QMCPACK model: rank-0 HDF5 checkpoints every 20 steps (1-1, no
    conflicts). *)

val run : Runner.env -> unit
