(* Chombo model: 3D AMR Poisson solve writing one shared plot file through
   parallel HDF5 with independent transfers: every rank writes its boxes at
   rank-strided offsets within each level's dataset (N-1 strided); no
   conflicts. *)

module Hdf5 = Hpcfs_hdf5.Hdf5

let levels = 3

let run env =
  App_common.setup_dir env "/out/chombo";
  App_common.compute_allreduce env;
  let file =
    Hdf5.create (Hdf5.B_mpiio env.Runner.mpiio) "/out/chombo/poisson.3d.hdf5"
  in
  let nprocs = env.Runner.nprocs in
  for level = 0 to levels - 1 do
    let ds =
      Hdf5.create_dataset file
        (Printf.sprintf "level_%d/data" level)
        ~nbytes:(App_common.block * nprocs)
    in
    Hdf5.write_independent ds
      ~off:(App_common.block * App_common.rank env)
      (App_common.payload env level)
  done;
  Hdf5.close file
