(* HACC-IO model: checkpoint/restart of the HACC cosmology code.  Each rank
   writes its own particle file (N-N consecutive) with nine variables per
   particle, through either the POSIX API or independent MPI-IO over
   MPI_COMM_SELF.  No shared files, no conflicts. *)

module Posix = Hpcfs_posix.Posix
module Mpiio = Hpcfs_mpiio.Mpiio

let variables = 9

let path env =
  Printf.sprintf "/out/hacc/m000.full.mpicosmo.%d" (App_common.rank env)

let run_posix env =
  App_common.setup_dir env "/out/hacc";
  let fd =
    Posix.openf env.Runner.posix (path env)
      [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_TRUNC ]
  in
  for v = 0 to variables - 1 do
    ignore
      (Posix.write env.Runner.posix fd
         (App_common.payload ~len:(App_common.block * 2) env v))
  done;
  Posix.close env.Runner.posix fd;
  App_common.compute env

let run_mpiio env =
  App_common.setup_dir env "/out/hacc";
  let fh =
    Mpiio.file_open_self env.Runner.mpiio (path env) Mpiio.mode_wronly_create
  in
  for v = 0 to variables - 1 do
    Mpiio.write_at env.Runner.mpiio fh
      ~off:(v * App_common.block * 2)
      (App_common.payload ~len:(App_common.block * 2) env v)
  done;
  Mpiio.file_close env.Runner.mpiio fh;
  App_common.compute env
