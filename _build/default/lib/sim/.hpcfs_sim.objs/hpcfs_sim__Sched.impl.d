lib/sim/sched.ml: Array Effect Fun List Printf String
