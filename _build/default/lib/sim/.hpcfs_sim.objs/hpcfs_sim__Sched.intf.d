lib/sim/sched.mli:
