(** Metadata-operation conflict detection — the paper's Section 7 future
    work ("we plan to expand our conflicts detection algorithm to support
    metadata operations"), implemented here as an extension.

    Data conflicts concern overlapping byte ranges; metadata conflicts
    concern the namespace: two processes operating on the same {e path}
    where at least one operation mutates it (create, unlink, rename,
    mkdir, rmdir, truncate).  Under a PFS with relaxed metadata semantics
    (BatchFS, GekkoFS's deferred namespace merging), a lookup may not yet
    observe another process's mutation, exactly as a relaxed data read may
    miss a write.

    The analysis mirrors Section 5.2's structure: a pair of metadata
    operations on the same path, the earlier one a mutation, issued by
    different processes, is a {e potential metadata conflict}; it is
    discharged under commit-style metadata semantics when the mutator
    executed a commit (or closed the file) on that path in between.  Since
    metadata operations carry no byte ranges, there is no session-style
    discharge: the pair remains flagged so the user can check their
    synchronization. *)

type kind =
  | Mutate_mutate  (** Both operations change the namespace entry. *)
  | Mutate_observe  (** A mutation followed by a lookup (stat, access, open...). *)

type t = {
  path : string;
  first : Hpcfs_trace.Record.t;  (** The earlier, mutating operation. *)
  second : Hpcfs_trace.Record.t;
  kind : kind;
}

val is_mutation : string -> bool
(** Does this POSIX function mutate the namespace? *)

val is_observation : string -> bool
(** Does this POSIX function observe the namespace? *)

val detect : Hpcfs_trace.Record.t list -> t list
(** Cross-process potential metadata conflicts, in timestamp order of the
    earlier operation. Same-process pairs are not reported (every PFS
    orders a single process's metadata operations). *)

type summary = { mutate_mutate : int; mutate_observe : int; paths : int }

val summarize : t list -> summary
