(** Happens-before reconstruction from communication events (Section 5.2).

    The paper validates its use of timestamp order by matching sends to
    receives and collective invocations in the FLASH traces and checking
    that every cross-process conflict pair is ordered by program
    synchronization.  This module implements that check in general: vector
    clocks are computed over the MPI event log (program order, send→recv
    edges, and barrier joins; collectives are covered by their constituent
    messages and barriers), and a conflict is {e synchronized} when the
    earlier operation happens-before the later one. *)

type t

val build : nprocs:int -> Hpcfs_mpi.Mpi.event list -> t

val ordered : t -> r1:int -> t1:int -> r2:int -> t2:int -> bool
(** Does the operation executed at logical time [t1] on rank [r1]
    happen-before the operation at [t2] on [r2]?  Same-rank operations are
    ordered by time. *)

val conflict_synchronized : t -> Conflict.t -> bool
(** Apply {!ordered} to a conflict pair. *)

val race_free : t -> Conflict.t list -> bool
(** All cross-process conflicts are synchronized — the paper's assumption
    that applications are race-free, checked rather than assumed. *)
