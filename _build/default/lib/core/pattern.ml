module Interval = Hpcfs_util.Interval

type mix = { consecutive : int; monotonic : int; random : int }

let zero = { consecutive = 0; monotonic = 0; random = 0 }

let add a b =
  {
    consecutive = a.consecutive + b.consecutive;
    monotonic = a.monotonic + b.monotonic;
    random = a.random + b.random;
  }

let total m = m.consecutive + m.monotonic + m.random

let percentages m =
  let t = total m in
  ( Hpcfs_util.Stats.pct m.consecutive t,
    Hpcfs_util.Stats.pct m.monotonic t,
    Hpcfs_util.Stats.pct m.random t )

let classify_stream accesses =
  let step (prev_end, m) a =
    let lo = a.Access.iv.Interval.lo in
    let m =
      if lo = prev_end then { m with consecutive = m.consecutive + 1 }
      else if lo > prev_end then { m with monotonic = m.monotonic + 1 }
      else { m with random = m.random + 1 }
    in
    (a.Access.iv.Interval.hi, m)
  in
  snd (List.fold_left step (0, zero) accesses)

let group accesses key =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun a ->
      let k = key a in
      match Hashtbl.find_opt tbl k with
      | Some l -> l := a :: !l
      | None -> Hashtbl.add tbl k (ref [ a ]))
    accesses;
  (* Accumulation reversed the per-group time order; restore it. *)
  Hashtbl.fold (fun _ l acc -> List.rev !l :: acc) tbl []

let local_mix accesses =
  group accesses (fun a -> (a.Access.file, a.Access.rank))
  |> List.fold_left (fun m stream -> add m (classify_stream stream)) zero

let global_mix accesses =
  group accesses (fun a -> (a.Access.file, 0))
  |> List.fold_left (fun m stream -> add m (classify_stream stream)) zero

let offset_series accesses ~file =
  List.filter_map
    (fun a ->
      if a.Access.file = file then
        Some (a.Access.time, a.Access.rank, a.Access.iv)
      else None)
    accesses
