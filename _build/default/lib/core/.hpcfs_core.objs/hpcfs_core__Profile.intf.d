lib/core/profile.mli: Format Hpcfs_trace Report
