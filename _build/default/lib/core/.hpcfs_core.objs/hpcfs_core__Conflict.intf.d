lib/core/conflict.mli: Access Eventtab Overlap
