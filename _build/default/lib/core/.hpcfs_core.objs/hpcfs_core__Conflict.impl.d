lib/core/conflict.ml: Access Eventtab List Overlap
