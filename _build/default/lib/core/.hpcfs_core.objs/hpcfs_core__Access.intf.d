lib/core/access.mli: Format Hpcfs_util
