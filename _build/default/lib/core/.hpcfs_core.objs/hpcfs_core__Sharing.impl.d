lib/core/sharing.ml: Access Hashtbl Hpcfs_util List
