lib/core/report.mli: Access Conflict Eventtab Format Hpcfs_trace Metadata_report Pattern Recommend Sharing
