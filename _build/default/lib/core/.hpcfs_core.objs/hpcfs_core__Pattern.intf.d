lib/core/pattern.mli: Access Hpcfs_util
