lib/core/profile.ml: Access Conflict Format Hashtbl Hpcfs_trace Hpcfs_util List Option Printf Report String
