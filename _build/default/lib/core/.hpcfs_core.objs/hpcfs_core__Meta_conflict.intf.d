lib/core/meta_conflict.mli: Hpcfs_trace
