lib/core/sharing.mli: Access
