lib/core/report.ml: Access Conflict Eventtab Format List Metadata_report Offsets Overlap Pattern Recommend Sharing String
