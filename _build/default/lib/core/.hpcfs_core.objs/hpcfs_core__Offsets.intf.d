lib/core/offsets.mli: Access Eventtab Hpcfs_trace
