lib/core/happens_before.ml: Access Array Conflict Hashtbl Hpcfs_mpi List Queue
