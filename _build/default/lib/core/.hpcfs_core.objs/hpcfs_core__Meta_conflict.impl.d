lib/core/meta_conflict.ml: Hashtbl Hpcfs_trace List String
