lib/core/eventtab.ml: Array Hashtbl
