lib/core/recommend.mli: Access Conflict Hpcfs_fs
