lib/core/happens_before.mli: Conflict Hpcfs_mpi
