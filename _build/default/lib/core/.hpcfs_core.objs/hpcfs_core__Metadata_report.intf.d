lib/core/metadata_report.mli: Hpcfs_trace
