lib/core/metadata_report.ml: Hashtbl Hpcfs_trace List
