lib/core/overlap.ml: Access Array Hashtbl Hpcfs_util List
