lib/core/overlap.mli: Access
