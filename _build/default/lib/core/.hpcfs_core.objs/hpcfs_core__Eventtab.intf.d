lib/core/eventtab.mli:
