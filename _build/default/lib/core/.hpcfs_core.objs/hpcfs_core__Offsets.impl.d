lib/core/offsets.ml: Access Eventtab Hashtbl Hpcfs_trace Hpcfs_util List Option String
