lib/core/recommend.ml: Conflict Hpcfs_fs Overlap Printf
