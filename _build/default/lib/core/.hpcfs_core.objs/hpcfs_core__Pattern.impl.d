lib/core/pattern.ml: Access Hashtbl Hpcfs_util List
