lib/core/access.ml: Format Hpcfs_util
