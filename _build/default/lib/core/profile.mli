(** Per-run I/O profile: the "detailed report for each application run"
    the paper publishes alongside its traces — function counters per layer,
    transfer volumes, access-size distribution, per-file activity and
    per-file conflict counts. *)

type file_stats = {
  f_path : string;
  f_reads : int;
  f_writes : int;
  f_bytes_read : int;
  f_bytes_written : int;
  f_ranks : int;  (** Distinct ranks that accessed the file. *)
  f_session_conflicts : int;
  f_commit_conflicts : int;
}

type t = {
  total_records : int;
  calls_per_layer : (string * int) list;
      (** Records per API layer ("POSIX", "MPI-IO", "HDF5"). *)
  calls_per_function : (string * int) list;
      (** POSIX-layer call counters, descending by count. *)
  bytes_read : int;
  bytes_written : int;
  size_histogram : (int * int * int) list;
      (** Power-of-two buckets [(lo, hi, count)] over data-access sizes;
          the last bucket's [hi] is [max_int]. *)
  files : file_stats list;  (** Sorted by path. *)
}

val build : Hpcfs_trace.Record.t list -> Report.t -> t
(** Assemble the profile from the raw records and an existing analysis. *)

val pp : Format.formatter -> t -> unit
(** Render the profile as the multi-section text report. *)
