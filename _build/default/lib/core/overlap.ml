module Interval = Hpcfs_util.Interval

type pair = Access.t * Access.t

let by_time a b = if a.Access.time <= b.Access.time then (a, b) else (b, a)

let group_by_file accesses =
  let tbl : (string, Access.t list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun a ->
      match Hashtbl.find_opt tbl a.Access.file with
      | Some l -> l := a :: !l
      | None -> Hashtbl.add tbl a.Access.file (ref [ a ]))
    accesses;
  Hashtbl.fold (fun _ l acc -> !l :: acc) tbl []

(* The inner loop of Algorithm 1 on an offset-sorted array. *)
let scan_sorted arr =
  let n = Array.length arr in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    let ai = arr.(i) in
    let rec inner j =
      if j < n then begin
        let aj = arr.(j) in
        if aj.Access.iv.Interval.lo >= ai.Access.iv.Interval.hi then ()
          (* subsequent tuples cannot overlap T_i *)
        else begin
          if Interval.overlaps ai.Access.iv aj.Access.iv then
            pairs := by_time ai aj :: !pairs;
          inner (j + 1)
        end
      end
    in
    inner (i + 1)
  done;
  !pairs

let detect accesses =
  List.concat_map
    (fun file_accesses ->
      let arr = Array.of_list file_accesses in
      Array.sort Access.compare_start arr;
      scan_sorted arr)
    (group_by_file accesses)

(* K-way merge of per-rank streams, each sorted by offset.  Per-rank
   records arrive already sorted by time; one sort per rank by offset is
   still needed, but each stream is much smaller than the union. *)
let detect_merge accesses =
  List.concat_map
    (fun file_accesses ->
      let per_rank : (int, Access.t list ref) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun a ->
          match Hashtbl.find_opt per_rank a.Access.rank with
          | Some l -> l := a :: !l
          | None -> Hashtbl.add per_rank a.Access.rank (ref [ a ]))
        file_accesses;
      let streams =
        Hashtbl.fold
          (fun _ l acc ->
            let arr = Array.of_list !l in
            Array.sort Access.compare_start arr;
            arr :: acc)
          per_rank []
      in
      let total = List.fold_left (fun n s -> n + Array.length s) 0 streams in
      let out = Array.make total (List.hd file_accesses) in
      let heads = Array.of_list streams in
      let idx = Array.make (Array.length heads) 0 in
      for slot = 0 to total - 1 do
        let best = ref (-1) in
        Array.iteri
          (fun s i ->
            if i < Array.length heads.(s) then
              match !best with
              | -1 -> best := s
              | b ->
                if Access.compare_start heads.(s).(i) heads.(b).(idx.(b)) < 0
                then best := s)
          idx;
        let s = !best in
        out.(slot) <- heads.(s).(idx.(s));
        idx.(s) <- idx.(s) + 1
      done;
      scan_sorted out)
    (group_by_file accesses)

let detect_naive accesses =
  List.concat_map
    (fun file_accesses ->
      let arr = Array.of_list file_accesses in
      let n = Array.length arr in
      let pairs = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Interval.overlaps arr.(i).Access.iv arr.(j).Access.iv then
            pairs := by_time arr.(i) arr.(j) :: !pairs
        done
      done;
      !pairs)
    (group_by_file accesses)

let rank_matrix ~nprocs pairs =
  let m = Array.make_matrix nprocs nprocs 0 in
  List.iter
    (fun (a, b) ->
      let i = min a.Access.rank b.Access.rank in
      let j = max a.Access.rank b.Access.rank in
      if i >= 0 && j < nprocs then m.(i).(j) <- m.(i).(j) + 1)
    pairs;
  m
