(** One-stop analysis of a traced run: everything the paper reports per
    application configuration, computed from a record list. *)

type t = {
  nprocs : int;
  record_count : int;
  accesses : Access.t list;
  skipped : int;
  events : Eventtab.t;
  sharing : Sharing.t;
  local_mix : Pattern.mix;
  global_mix : Pattern.mix;
  session_conflicts : Conflict.t list;
  commit_conflicts : Conflict.t list;
  metadata : Metadata_report.usage;
  verdict : Recommend.verdict;
}

val analyze : nprocs:int -> Hpcfs_trace.Record.t list -> t

val session_summary : t -> Conflict.summary
val commit_summary : t -> Conflict.summary

val pp_summary : Format.formatter -> t -> unit
(** Multi-line human-readable digest (used by the CLI and quickstart). *)
