(** Resolved I/O accesses: the tuples of Section 5.

    The conflict-detection algorithm works on tuples
    [(t, r, os, oe, type)] extended with the session/commit bookkeeping
    fields of Section 5.2: the last preceding [open] and the first
    succeeding [close] / commit by the same process on the same file.

    One deliberate refinement over the paper's prose: the paper folds
    "close or commit" into a single [tc] field, but its condition (3) needs
    commits and its condition (4) needs closes specifically (an [fsync]
    must not create close-to-open visibility).  We therefore carry both
    [t_commit] and [t_close]. *)

type op = Read | Write

type t = {
  time : int;  (** Entry timestamp [t]. *)
  rank : int;  (** Process rank [r]. *)
  file : string;
  iv : Hpcfs_util.Interval.t;  (** Byte range [\[os, oe)]. *)
  op : op;
  func : string;  (** Originating POSIX function (for reports). *)
  t_open : int;
      (** Time of the last [open] of [file] by [rank] at or before [time];
          [min_int] if the access somehow precedes any open. *)
  t_commit : int;
      (** Time of the first commit (fsync/fdatasync/fflush/close/fclose) of
          [file] by [rank] after [time]; [max_int] if none follows. *)
  t_close : int;
      (** Time of the first [close] of [file] by [rank] after [time];
          [max_int] if none follows. *)
}

val op_name : op -> string

val is_write : t -> bool

val compare_start : t -> t -> int
(** Order by interval start then time — the sort of Algorithm 1. *)

val compare_time : t -> t -> int

val pp : Format.formatter -> t -> unit
