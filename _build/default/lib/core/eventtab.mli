(** Per-(rank, file) tables of open / close / commit times.

    Section 5.2 describes two ways of testing the commit and session
    conditions: annotating each record with its neighbouring events, or
    keeping per-process tables of the (few) open/close/commit operations
    and binary-searching them per overlap.  This module is the table
    representation; {!Offsets} uses it to annotate accesses, and
    {!Conflict} can also query it directly (the paper's alternative),
    which the benchmark harness compares. *)

type t

val create : unit -> t

val add_open : t -> rank:int -> file:string -> int -> unit
val add_close : t -> rank:int -> file:string -> int -> unit

val add_commit : t -> rank:int -> file:string -> int -> unit
(** Commits include closes (a close commits); {!add_close} does NOT
    automatically add a commit — callers register both, mirroring the
    trace. *)

val seal : t -> unit
(** Sort the accumulated times; must be called before any query. *)

val last_open_before : t -> rank:int -> file:string -> int -> int
(** Latest open time [<=] the given time; [min_int] if none. *)

val first_close_after : t -> rank:int -> file:string -> int -> int
(** Earliest close time [>] the given time; [max_int] if none. *)

val first_commit_after : t -> rank:int -> file:string -> int -> int
(** Earliest commit time [>] the given time; [max_int] if none. *)

val exists_commit_between : t -> rank:int -> file:string -> int -> int -> bool
(** Any commit strictly inside [(t1, t2)] — condition (3) of Section 5. *)

val exists_close_open_between :
  t -> writer:int -> reader:int -> file:string -> int -> int -> bool
(** A close by [writer] followed by an open by [reader], both strictly
    inside [(t1, t2)] — condition (4) of Section 5. *)
