module Record = Hpcfs_trace.Record

type kind = Mutate_mutate | Mutate_observe

type t = {
  path : string;
  first : Record.t;
  second : Record.t;
  kind : kind;
}

let is_mutation = function
  | "mkdir" | "rmdir" | "unlink" | "remove" | "rename" | "truncate"
  | "ftruncate" | "link" | "symlink" | "mknod" | "chmod" | "chown" | "utime" ->
    true
  | "open" | "fopen" -> false (* creation is handled via the flags below *)
  | _ -> false

let is_creating_open r =
  match r.Record.func with
  | "open" -> (
    match Record.arg r "flags" with
    | Some flags ->
      List.exists
        (fun f -> f = "O_CREAT" || f = "O_TRUNC")
        (String.split_on_char '|' flags)
    | None -> false)
  | "fopen" -> (
    match Record.arg r "mode" with
    | Some m -> String.length m > 0 && (m.[0] = 'w' || m.[0] = 'a')
    | None -> false)
  | _ -> false

let is_observation = function
  | "stat" | "stat64" | "lstat" | "lstat64" | "fstat" | "fstat64" | "access"
  | "faccessat" | "opendir" | "readdir" | "readlink" | "readlinkat" ->
    true
  | "open" | "fopen" -> true (* opening looks the path up *)
  | _ -> false

let mutates r = is_mutation r.Record.func || is_creating_open r

let observes r = is_observation r.Record.func

(* Paths an operation touches ([rename] touches two). *)
let paths_of r =
  match r.Record.file with
  | None -> []
  | Some p -> (
    match (r.Record.func, Record.arg r "dst") with
    | "rename", Some dst -> [ p; dst ]
    | _ -> [ p ])

let detect records =
  (* Per path, scan operations in time order; pair each mutation with the
     next operations by other ranks until the mutator commits the path. *)
  let per_path : (string, Record.t list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if r.Record.layer = Record.L_posix && (mutates r || observes r || Hpcfs_trace.Opclass.is_commit_for_conflicts r.Record.func)
      then
        List.iter
          (fun p ->
            match Hashtbl.find_opt per_path p with
            | Some l -> l := r :: !l
            | None -> Hashtbl.add per_path p (ref [ r ]))
          (paths_of r))
    records;
  let conflicts = ref [] in
  Hashtbl.iter
    (fun path ops ->
      let ops = List.rev !ops in
      let rec scan = function
        | [] -> ()
        | first :: rest when mutates first ->
          (* Walk forward until the mutator commits this path. *)
          let rec forward = function
            | [] -> ()
            | second :: more ->
              if
                second.Record.rank = first.Record.rank
                && Hpcfs_trace.Opclass.is_commit_for_conflicts
                     second.Record.func
              then ()
              else begin
                if second.Record.rank <> first.Record.rank then begin
                  if mutates second then
                    conflicts :=
                      { path; first; second; kind = Mutate_mutate }
                      :: !conflicts
                  else if observes second then
                    conflicts :=
                      { path; first; second; kind = Mutate_observe }
                      :: !conflicts
                end;
                forward more
              end
          in
          forward rest;
          scan rest
        | _ :: rest -> scan rest
      in
      scan ops)
    per_path;
  List.sort
    (fun a b -> compare a.first.Record.time b.first.Record.time)
    !conflicts

type summary = { mutate_mutate : int; mutate_observe : int; paths : int }

let summarize conflicts =
  let paths = Hashtbl.create 16 in
  let mm = ref 0 and mo = ref 0 in
  List.iter
    (fun c ->
      Hashtbl.replace paths c.path ();
      match c.kind with
      | Mutate_mutate -> incr mm
      | Mutate_observe -> incr mo)
    conflicts;
  { mutate_mutate = !mm; mutate_observe = !mo; paths = Hashtbl.length paths }
