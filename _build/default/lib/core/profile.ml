module Record = Hpcfs_trace.Record
module Opclass = Hpcfs_trace.Opclass
module Interval = Hpcfs_util.Interval

type file_stats = {
  f_path : string;
  f_reads : int;
  f_writes : int;
  f_bytes_read : int;
  f_bytes_written : int;
  f_ranks : int;
  f_session_conflicts : int;
  f_commit_conflicts : int;
}

type t = {
  total_records : int;
  calls_per_layer : (string * int) list;
  calls_per_function : (string * int) list;
  bytes_read : int;
  bytes_written : int;
  size_histogram : (int * int * int) list;
  files : file_stats list;
}

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Power-of-two bucket index for an access size. *)
let bucket_of_size size =
  let rec go b lo = if size < lo * 2 || b >= 24 then b else go (b + 1) (lo * 2) in
  if size <= 0 then 0 else go 0 1

let bucket_bounds b =
  let lo = 1 lsl b in
  if b >= 24 then (lo, max_int) else (lo, (lo * 2) - 1)

let build records report =
  let layer_counts = Hashtbl.create 4 in
  let func_counts = Hashtbl.create 32 in
  List.iter
    (fun r ->
      bump layer_counts (Record.layer_name r.Record.layer) 1;
      if r.Record.layer = Record.L_posix then bump func_counts r.Record.func 1)
    records;
  let size_counts = Hashtbl.create 16 in
  let per_file : (string, file_stats ref) Hashtbl.t = Hashtbl.create 16 in
  let ranks_per_file : (string * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let file_entry path =
    match Hashtbl.find_opt per_file path with
    | Some f -> f
    | None ->
      let f =
        ref
          { f_path = path; f_reads = 0; f_writes = 0; f_bytes_read = 0;
            f_bytes_written = 0; f_ranks = 0; f_session_conflicts = 0;
            f_commit_conflicts = 0 }
      in
      Hashtbl.add per_file path f;
      f
  in
  let bytes_read = ref 0 and bytes_written = ref 0 in
  List.iter
    (fun a ->
      let len = Interval.length a.Access.iv in
      bump size_counts (bucket_of_size len) 1;
      Hashtbl.replace ranks_per_file (a.Access.file, a.Access.rank) ();
      let f = file_entry a.Access.file in
      match a.Access.op with
      | Access.Read ->
        bytes_read := !bytes_read + len;
        f := { !f with f_reads = !f.f_reads + 1; f_bytes_read = !f.f_bytes_read + len }
      | Access.Write ->
        bytes_written := !bytes_written + len;
        f :=
          { !f with f_writes = !f.f_writes + 1;
            f_bytes_written = !f.f_bytes_written + len })
    report.Report.accesses;
  Hashtbl.iter
    (fun (path, _) () ->
      let f = file_entry path in
      f := { !f with f_ranks = !f.f_ranks + 1 })
    ranks_per_file;
  let count_conflicts which conflicts =
    List.iter
      (fun c ->
        let f = file_entry c.Conflict.first.Access.file in
        f :=
          (match which with
          | `Session -> { !f with f_session_conflicts = !f.f_session_conflicts + 1 }
          | `Commit -> { !f with f_commit_conflicts = !f.f_commit_conflicts + 1 }))
      conflicts
  in
  count_conflicts `Session report.Report.session_conflicts;
  count_conflicts `Commit report.Report.commit_conflicts;
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    total_records = List.length records;
    calls_per_layer =
      sorted layer_counts |> List.sort (fun (a, _) (b, _) -> compare a b);
    calls_per_function = sorted func_counts;
    bytes_read = !bytes_read;
    bytes_written = !bytes_written;
    size_histogram =
      Hashtbl.fold (fun b n acc -> (b, n) :: acc) size_counts []
      |> List.sort compare
      |> List.map (fun (b, n) ->
             let lo, hi = bucket_bounds b in
             (lo, hi, n));
    files =
      Hashtbl.fold (fun _ f acc -> !f :: acc) per_file []
      |> List.sort (fun a b -> compare a.f_path b.f_path);
  }

let pp_size ppf n =
  if n >= 1 lsl 20 then Format.fprintf ppf "%.1f MiB" (float_of_int n /. 1048576.0)
  else if n >= 1 lsl 10 then Format.fprintf ppf "%.1f KiB" (float_of_int n /. 1024.0)
  else Format.fprintf ppf "%d B" n

let pp ppf t =
  Format.fprintf ppf "trace records      : %d@." t.total_records;
  Format.fprintf ppf "records per layer  : %s@."
    (String.concat ", "
       (List.map (fun (l, n) -> Printf.sprintf "%s=%d" l n) t.calls_per_layer));
  Format.fprintf ppf "bytes read/written : %a / %a@." pp_size t.bytes_read
    pp_size t.bytes_written;
  Format.fprintf ppf "POSIX call counters:@.";
  List.iter
    (fun (f, n) -> Format.fprintf ppf "  %-12s %d@." f n)
    t.calls_per_function;
  Format.fprintf ppf "access-size histogram:@.";
  List.iter
    (fun (lo, hi, n) ->
      if hi = max_int then Format.fprintf ppf "  >= %-10d %d@." lo n
      else Format.fprintf ppf "  %d..%-8d %d@." lo hi n)
    t.size_histogram;
  Format.fprintf ppf "per-file activity:@.";
  List.iter
    (fun f ->
      Format.fprintf ppf
        "  %-44s r:%-4d w:%-4d ranks:%-3d conflicts session:%d commit:%d@."
        f.f_path f.f_reads f.f_writes f.f_ranks f.f_session_conflicts
        f.f_commit_conflicts)
    t.files
