type series = { mutable acc : int list; mutable sorted : int array }

type t = {
  opens : (int * string, series) Hashtbl.t;
  closes : (int * string, series) Hashtbl.t;
  commits : (int * string, series) Hashtbl.t;
  mutable sealed : bool;
}

let create () =
  {
    opens = Hashtbl.create 64;
    closes = Hashtbl.create 64;
    commits = Hashtbl.create 64;
    sealed = false;
  }

let add tbl key time =
  match Hashtbl.find_opt tbl key with
  | Some s -> s.acc <- time :: s.acc
  | None -> Hashtbl.add tbl key { acc = [ time ]; sorted = [||] }

let add_open t ~rank ~file time = add t.opens (rank, file) time
let add_close t ~rank ~file time = add t.closes (rank, file) time
let add_commit t ~rank ~file time = add t.commits (rank, file) time

let seal t =
  let seal_tbl tbl =
    Hashtbl.iter
      (fun _ s ->
        let a = Array.of_list s.acc in
        Array.sort compare a;
        s.sorted <- a)
      tbl
  in
  seal_tbl t.opens;
  seal_tbl t.closes;
  seal_tbl t.commits;
  t.sealed <- true

let sorted t tbl key =
  if not t.sealed then invalid_arg "Eventtab: query before seal";
  match Hashtbl.find_opt tbl key with Some s -> s.sorted | None -> [||]

(* Largest element <= x, or min_int. *)
let floor_find a x =
  let rec go lo hi best =
    if lo > hi then best
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) <= x then go (mid + 1) hi a.(mid) else go lo (mid - 1) best
    end
  in
  go 0 (Array.length a - 1) min_int

(* Smallest element > x, or max_int. *)
let ceil_find a x =
  let rec go lo hi best =
    if lo > hi then best
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) > x then go lo (mid - 1) a.(mid) else go (mid + 1) hi best
    end
  in
  go 0 (Array.length a - 1) max_int

let last_open_before t ~rank ~file time =
  floor_find (sorted t t.opens (rank, file)) time

let first_close_after t ~rank ~file time =
  ceil_find (sorted t t.closes (rank, file)) time

let first_commit_after t ~rank ~file time =
  ceil_find (sorted t t.commits (rank, file)) time

let exists_commit_between t ~rank ~file t1 t2 =
  let c = first_commit_after t ~rank ~file t1 in
  c < t2

let exists_close_open_between t ~writer ~reader ~file t1 t2 =
  let close = first_close_after t ~rank:writer ~file t1 in
  if close >= t2 then false
  else begin
    (* Latest reader open before t2 must follow the writer's close. *)
    let open_ = floor_find (sorted t t.opens (reader, file)) (t2 - 1) in
    open_ > close
  end
