module Interval = Hpcfs_util.Interval

type op = Read | Write

type t = {
  time : int;
  rank : int;
  file : string;
  iv : Interval.t;
  op : op;
  func : string;
  t_open : int;
  t_commit : int;
  t_close : int;
}

let op_name = function Read -> "read" | Write -> "write"

let is_write a = a.op = Write

let compare_start a b =
  match Interval.compare_lo a.iv b.iv with
  | 0 -> compare a.time b.time
  | c -> c

let compare_time a b = compare a.time b.time

let pp ppf a =
  Format.fprintf ppf "@[<h>%d r%d %s %s %a@]" a.time a.rank (op_name a.op)
    a.file Interval.pp a.iv
