(** Offset reconstruction from raw POSIX traces (Section 5.1).

    Calls like [pwrite] carry their offset explicitly, but [write]/[read]
    depend on the file position left by previous operations.  This module
    replays the POSIX-layer records of a trace in timestamp order, tracking
    the current offset of every (rank, fd) — applying the open flags
    ([O_TRUNC], [O_APPEND]), the seek whences ([SEEK_SET]/[CUR]/[END]) and
    the byte counts of data operations — and produces the resolved
    {!Access.t} tuples the overlap and conflict algorithms consume, plus
    the open/close/commit {!Eventtab.t}.

    File sizes needed by [SEEK_END] and [O_APPEND] are themselves
    reconstructed from the writes and truncations seen so far. *)

type result = {
  accesses : Access.t list;  (** Data accesses in timestamp order. *)
  events : Eventtab.t;  (** Sealed open/close/commit tables. *)
  skipped : int;
      (** Data records that could not be resolved (e.g. an fd with no
          preceding open in the trace). *)
}

val resolve : Hpcfs_trace.Record.t list -> result
(** Records from layers other than POSIX are ignored (they duplicate the
    POSIX calls the libraries issue underneath). *)
