module Mpi = Hpcfs_mpi.Mpi

type clocked = { point : int; vc : int array }

type t = { nprocs : int; per_rank : clocked array array }

let join a b = Array.mapi (fun i x -> max x b.(i)) a

(* Atomic items the vector-clock pass processes: a barrier is split into an
   enter event (publishes the rank's clock into the generation's join set)
   and an exit event (absorbs the join of every participant's enter clock),
   so that work preceding any rank's enter happens-before work following any
   rank's exit. *)
type item =
  | I_send of { src : int; dst : int; tag : int; time : int }
  | I_recv of { src : int; dst : int; tag : int; time : int }
  | I_bar_enter of { rank : int; gen : int; time : int }
  | I_bar_exit of { rank : int; gen : int; time : int }

let item_time = function
  | I_send { time; _ } | I_recv { time; _ }
  | I_bar_enter { time; _ } | I_bar_exit { time; _ } ->
    time

let build ~nprocs events =
  let items =
    List.concat_map
      (fun e ->
        match e with
        | Mpi.E_send { src; dst; tag; time } -> [ I_send { src; dst; tag; time } ]
        | Mpi.E_recv { src; dst; tag; time } -> [ I_recv { src; dst; tag; time } ]
        | Mpi.E_barrier { rank; gen; enter; exit } ->
          [ I_bar_enter { rank; gen; time = enter };
            I_bar_exit { rank; gen; time = exit } ]
        | Mpi.E_coll _ -> [])
      events
    |> List.sort (fun a b -> compare (item_time a) (item_time b))
  in
  let vcs = Array.init nprocs (fun _ -> Array.make nprocs 0) in
  let out = Array.make nprocs [] in
  let msgs : (int * int * int, int array Queue.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let barrier_enters : (int, int array) Hashtbl.t = Hashtbl.create 16 in
  let record rank point =
    out.(rank) <- { point; vc = Array.copy vcs.(rank) } :: out.(rank)
  in
  let advance rank = vcs.(rank).(rank) <- vcs.(rank).(rank) + 1 in
  List.iter
    (fun item ->
      match item with
      | I_send { src; dst; tag; time } ->
        advance src;
        let q =
          match Hashtbl.find_opt msgs (src, dst, tag) with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.add msgs (src, dst, tag) q;
            q
        in
        Queue.push (Array.copy vcs.(src)) q;
        record src time
      | I_recv { src; dst; tag; time } ->
        let incoming =
          match Hashtbl.find_opt msgs (src, dst, tag) with
          | Some q when not (Queue.is_empty q) -> Queue.pop q
          | Some _ | None -> Array.make nprocs 0
        in
        vcs.(dst) <- join vcs.(dst) incoming;
        advance dst;
        record dst time
      | I_bar_enter { rank; gen; time } ->
        advance rank;
        (match Hashtbl.find_opt barrier_enters gen with
        | Some j -> Hashtbl.replace barrier_enters gen (join j vcs.(rank))
        | None -> Hashtbl.add barrier_enters gen (Array.copy vcs.(rank)));
        record rank time
      | I_bar_exit { rank; gen; time } ->
        (* Every enter of this generation precedes every exit, so the join
           set is complete by the time the first exit is processed. *)
        (match Hashtbl.find_opt barrier_enters gen with
        | Some j -> vcs.(rank) <- join vcs.(rank) j
        | None -> ());
        advance rank;
        record rank time)
    items;
  { nprocs; per_rank = Array.map (fun l -> Array.of_list (List.rev l)) out }

let ordered t ~r1 ~t1 ~r2 ~t2 =
  if r1 = r2 then t1 < t2
  else if r1 < 0 || r1 >= t.nprocs || r2 < 0 || r2 >= t.nprocs then false
  else begin
    let evs1 = t.per_rank.(r1) and evs2 = t.per_rank.(r2) in
    (* First event on r1 strictly after t1. *)
    let rec first_after lo hi best =
      if lo > hi then best
      else begin
        let mid = (lo + hi) / 2 in
        if evs1.(mid).point > t1 then first_after lo (mid - 1) (Some mid)
        else first_after (mid + 1) hi best
      end
    in
    (* Last event on r2 strictly before t2. *)
    let rec last_before lo hi best =
      if lo > hi then best
      else begin
        let mid = (lo + hi) / 2 in
        if evs2.(mid).point < t2 then last_before (mid + 1) hi (Some mid)
        else last_before lo (mid - 1) best
      end
    in
    match
      ( first_after 0 (Array.length evs1 - 1) None,
        last_before 0 (Array.length evs2 - 1) None )
    with
    | Some i1, Some i2 ->
      (* r1's op at t1 precedes its (i1)-th event, whose own-component value
         is evs1.(i1).vc.(r1); r2 knows about it iff its clock caught up. *)
      evs2.(i2).vc.(r1) >= evs1.(i1).vc.(r1)
    | _ -> false
  end

let conflict_synchronized t (c : Conflict.t) =
  ordered t ~r1:c.Conflict.first.Access.rank ~t1:c.Conflict.first.Access.time
    ~r2:c.Conflict.second.Access.rank ~t2:c.Conflict.second.Access.time

let race_free t conflicts =
  List.for_all
    (fun c ->
      c.Conflict.scope = Conflict.Same || conflict_synchronized t c)
    conflicts
