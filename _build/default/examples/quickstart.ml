(* Quickstart: trace a parallel application model, then ask the analysis
   which file-system consistency semantics it actually needs.

     dune exec examples/quickstart.exe

   The application here is a small custom one written against the public
   API (not one of the built-in models): every rank writes its slice of a
   shared checkpoint, rank 0 appends a log line, and everyone reads the
   input deck at startup. *)

module Mpi = Hpcfs_mpi.Mpi
module Posix = Hpcfs_posix.Posix
module Runner = Hpcfs_apps.Runner
module Report = Hpcfs_core.Report

let my_app (env : Runner.env) =
  let posix = env.Runner.posix in
  let rank = Mpi.rank env.Runner.comm in
  (* Rank 0 stages the input deck and creates the output directory. *)
  if rank = 0 then begin
    Posix.mkdir posix "/run";
    let fd = Posix.openf posix "/run/input.deck" [ Posix.O_WRONLY; Posix.O_CREAT ] in
    ignore (Posix.write posix fd (Bytes.make 4096 'i'));
    Posix.close posix fd
  end;
  Mpi.barrier env.Runner.comm;
  (* Everyone reads the input deck. *)
  let fd = Posix.openf posix "/run/input.deck" [ Posix.O_RDONLY ] in
  ignore (Posix.read posix fd 4096);
  Posix.close posix fd;
  (* Time steps with a checkpoint phase: each rank writes its tile. *)
  for step = 1 to 3 do
    Mpi.barrier env.Runner.comm;
    let path = Printf.sprintf "/run/checkpoint.%02d" step in
    if rank = 0 then
      Posix.close posix
        (Posix.openf posix path [ Posix.O_WRONLY; Posix.O_CREAT ]);
    Mpi.barrier env.Runner.comm;
    let fd = Posix.openf posix path [ Posix.O_WRONLY ] in
    ignore (Posix.pwrite posix fd ~off:(rank * 1024) (Bytes.make 1024 'd'));
    Posix.close posix fd;
    if rank = 0 then begin
      let log = Posix.openf posix "/run/app.log" [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_APPEND ] in
      ignore (Posix.write posix log (Bytes.of_string "checkpoint done\n"));
      Posix.close posix log
    end
  done

let () =
  let nprocs = 16 in
  print_endline "running the application on 16 simulated ranks...";
  let result = Runner.run ~nprocs my_app in
  Printf.printf "captured %d trace records\n\n"
    (List.length result.Runner.records);
  let report = Report.analyze ~nprocs result.Runner.records in
  Report.pp_summary Format.std_formatter report;
  print_newline ();
  print_endline
    "The recommendation means: this application would run correctly on any\n\
     PFS providing at least that consistency level (see Table 1 in the\n\
     README for which production systems those are)."
