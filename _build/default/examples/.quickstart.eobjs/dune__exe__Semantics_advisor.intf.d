examples/semantics_advisor.mli:
