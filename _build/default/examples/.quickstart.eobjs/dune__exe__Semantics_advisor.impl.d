examples/semantics_advisor.ml: Hashtbl Hpcfs_apps Hpcfs_core Hpcfs_fs Hpcfs_util List Option Printf String
