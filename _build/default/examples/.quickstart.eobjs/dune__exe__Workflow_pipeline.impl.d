examples/workflow_pipeline.ml: Bytes Char Hpcfs_apps Hpcfs_fs Hpcfs_mpi Hpcfs_posix Hpcfs_sim Printf
