examples/pfs_playground.ml: Bytes Hpcfs_fs List Printf
