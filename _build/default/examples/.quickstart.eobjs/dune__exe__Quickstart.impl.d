examples/quickstart.ml: Bytes Format Hpcfs_apps Hpcfs_core Hpcfs_mpi Hpcfs_posix List Printf
