examples/flash_conflicts.ml: Hpcfs_apps Hpcfs_core Hpcfs_fs Hpcfs_hdf5 Hpcfs_util List Option Printf
