examples/workflow_pipeline.mli:
