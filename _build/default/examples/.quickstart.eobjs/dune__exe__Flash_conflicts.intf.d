examples/flash_conflicts.mli:
