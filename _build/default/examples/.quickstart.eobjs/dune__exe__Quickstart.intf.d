examples/quickstart.mli:
