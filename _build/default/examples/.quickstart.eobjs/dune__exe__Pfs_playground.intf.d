examples/pfs_playground.mli:
