(* PFS consistency-semantics playground: drive the file-system simulator
   directly and watch when writes become visible under each model of
   Section 3.

   Scenario (two processes, one shared file):

     rank 0:  open - write "AAAA" at 0 - fsync - write "BBBB" at 4 - close
     rank 1:  open early - read;  reopen after the close - read

     dune exec examples/pfs_playground.exe *)

module Consistency = Hpcfs_fs.Consistency
module Pfs = Hpcfs_fs.Pfs
module Fdata = Hpcfs_fs.Fdata

let show label (r : Fdata.read_result) =
  Printf.printf "  %-34s %-10S stale bytes: %d\n" label
    (Bytes.to_string r.Fdata.data) r.Fdata.stale_bytes

let scenario semantics =
  Printf.printf "%s:\n" (Consistency.name semantics);
  let pfs = Pfs.create semantics in
  (* Timeline (logical clock values chosen by hand):
     t1 both open; t2 w"AAAA"@0; t3 fsync; t4 w"BBBB"@4; t5 reader reads;
     t6 writer closes; t7 reader reopens; t8 reader reads. *)
  ignore (Pfs.open_file pfs ~time:1 ~rank:0 ~create:true "/shared");
  ignore (Pfs.open_file pfs ~time:1 ~rank:1 ~create:false "/shared");
  Pfs.write pfs ~time:2 ~rank:0 "/shared" ~off:0 (Bytes.of_string "AAAA");
  Pfs.fsync pfs ~time:3 ~rank:0 "/shared";
  Pfs.write pfs ~time:4 ~rank:0 "/shared" ~off:4 (Bytes.of_string "BBBB");
  show "reader, before writer closes:"
    (Pfs.read pfs ~time:5 ~rank:1 "/shared" ~off:0 ~len:8);
  Pfs.close_file pfs ~time:6 ~rank:0 "/shared";
  ignore (Pfs.open_file pfs ~time:7 ~rank:1 "/shared");
  show "reader, after close-then-reopen:"
    (Pfs.read pfs ~time:8 ~rank:1 "/shared" ~off:0 ~len:8);
  print_newline ()

let () =
  print_endline
    "What does a second process see?  ('\\000' prints as \\000; a stale byte\n\
     is one whose newest write is not yet visible to this reader.)\n";
  List.iter scenario
    [
      Consistency.Strong;
      Consistency.Commit;
      Consistency.Session;
      Consistency.Eventual { delay = 4 };
    ];
  print_endline
    "Reading guide:\n\
     - strong: everything visible immediately;\n\
     - commit: \"AAAA\" visible after the fsync, \"BBBB\" only after the close\n\
    \  (a close is also a commit);\n\
     - session: nothing until the writer closed AND the reader reopened;\n\
     - eventual: visibility is only a matter of time (delay = 4 ticks)."
