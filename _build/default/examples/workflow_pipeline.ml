(* Workflow pipeline: the paper's future-work scenario (Section 7), where
   simulation output is consumed by a separate analysis step through the
   file system.

   Producer phase: all ranks write a shared snapshot file and close it.
   Consumer phase: the same job's ranks read the snapshot back.

   Under session semantics the close-to-open discipline of the pipeline
   makes the handoff safe.  Under eventual consistency correctness becomes
   a race against the propagation delay — unless the producer laminates
   the file (the UnifyFS operation of Section 3.2), which publishes it to
   everyone immediately.

     dune exec examples/workflow_pipeline.exe *)

module Mpi = Hpcfs_mpi.Mpi
module Posix = Hpcfs_posix.Posix
module Pfs = Hpcfs_fs.Pfs
module Consistency = Hpcfs_fs.Consistency
module Runner = Hpcfs_apps.Runner

let snapshot = "/pipeline/snapshot.dat"
let tile = 1024

let pipeline ~laminate (env : Runner.env) =
  let posix = env.Runner.posix in
  let rank = Mpi.rank env.Runner.comm in
  (* Producer: every rank writes its tile, then closes. *)
  if rank = 0 then begin
    Posix.mkdir posix "/pipeline";
    Posix.close posix
      (Posix.openf posix snapshot [ Posix.O_WRONLY; Posix.O_CREAT ])
  end;
  Mpi.barrier env.Runner.comm;
  let fd = Posix.openf posix snapshot [ Posix.O_WRONLY ] in
  ignore
    (Posix.pwrite posix fd ~off:(rank * tile)
       (Bytes.make tile (Char.chr (65 + (rank mod 26)))));
  Posix.close posix fd;
  (* Lamination is legal only once every writer is done. *)
  Mpi.barrier env.Runner.comm;
  if laminate && rank = 0 then
    Pfs.laminate (Posix.pfs posix)
      ~time:(Hpcfs_sim.Sched.tick ())
      snapshot;
  Mpi.barrier env.Runner.comm;
  (* Consumer: every rank reads the whole snapshot. *)
  let fd = Posix.openf posix snapshot [ Posix.O_RDONLY ] in
  ignore (Posix.read posix fd (tile * env.Runner.nprocs));
  Posix.close posix fd

let run_under name semantics ~laminate =
  let result = Runner.run ~nprocs:8 ~semantics (pipeline ~laminate) in
  let stats = result.Runner.stats in
  Printf.printf "%-42s stale reads: %d / %d reads\n" name
    stats.Pfs.stale_reads stats.Pfs.reads

let () =
  print_endline
    "producer -> consumer handoff through a shared snapshot file (8 ranks):\n";
  run_under "strong consistency" Consistency.Strong ~laminate:false;
  run_under "session consistency (close-to-open)" Consistency.Session
    ~laminate:false;
  run_under "commit consistency" Consistency.Commit ~laminate:false;
  run_under "eventual (delay 50000 ticks)"
    (Consistency.Eventual { delay = 50_000 })
    ~laminate:false;
  run_under "eventual (delay 50000) + lamination"
    (Consistency.Eventual { delay = 50_000 })
    ~laminate:true;
  print_endline
    "\nThe pipeline's own open/close discipline makes session semantics\n\
     sufficient (the paper's observation generalized to workflows); under\n\
     eventual consistency the consumer races the propagation delay and\n\
     reads stale data, unless the producer laminates the snapshot first."
