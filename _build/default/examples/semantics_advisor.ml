(* Semantics advisor: for every application of the study, compute the
   weakest consistency semantics that suffices and list the production file
   systems (Table 1) it could run on.

     dune exec examples/semantics_advisor.exe *)

module Registry = Hpcfs_apps.Registry
module Runner = Hpcfs_apps.Runner
module Report = Hpcfs_core.Report
module Recommend = Hpcfs_core.Recommend
module Consistency = Hpcfs_fs.Consistency
module Table = Hpcfs_util.Table

let nprocs = 32

let systems_for semantics =
  (* A PFS is suitable if its category is at least as strict as needed. *)
  List.concat_map
    (fun (category, systems) ->
      let cat =
        match Consistency.category_of_pfs (List.hd systems) with
        | Some c -> c
        | None -> Consistency.Strong
      in
      ignore category;
      if Consistency.compare_strength cat semantics >= 0 then systems else [])
    Consistency.table1

let () =
  let t =
    Table.create
      [ "Configuration"; "Weakest sufficient semantics"; "Suitable PFSs" ]
  in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun entry ->
      let result = Runner.run ~nprocs entry.Registry.body in
      let report = Report.analyze ~nprocs result.Runner.records in
      let verdict = report.Report.verdict in
      let semantics = verdict.Recommend.semantics in
      Hashtbl.replace counts (Consistency.name semantics)
        (1
        + Option.value ~default:0
            (Hashtbl.find_opt counts (Consistency.name semantics)));
      let systems = systems_for semantics in
      (* BurstFS cannot order same-process writes; drop it when needed. *)
      let systems =
        if verdict.Recommend.needs_local_order then
          List.filter (fun s -> s <> "BurstFS") systems
        else systems
      in
      Table.add_row t
        [
          Registry.label entry;
          Recommend.describe verdict;
          String.concat ", " systems;
        ])
    Registry.all;
  Table.print t;
  print_endline "summary:";
  Hashtbl.iter
    (fun semantics n ->
      Printf.printf "  %d configurations need at most %s\n" n semantics)
    counts;
  print_endline
    "\n(the paper's conclusion: 16 of the 17 applications can use a PFS with\n\
     weaker-than-POSIX semantics; only FLASH needs commit semantics, and a\n\
     one-line change brings even FLASH down to session semantics.)"
