(* The FLASH case study (Section 6.3): the one application of the study
   whose conflicts involve two distinct processes.

   This example reproduces the full argument:
     1. under session semantics FLASH has WAW-S and WAW-D conflicts,
        caused by the per-dataset H5Fflush rewriting HDF5 metadata;
     2. under commit semantics the conflicts disappear (the fsync inside
        H5Fflush is the commit);
     3. running FLASH on a session-semantics PFS actually corrupts files,
        while a commit-semantics PFS is correct — checked on the simulator;
     4. the paper's one-line fix (collective metadata mode) removes the
        cross-process conflicts even under session semantics.

     dune exec examples/flash_conflicts.exe *)

module Registry = Hpcfs_apps.Registry
module Runner = Hpcfs_apps.Runner
module Validation = Hpcfs_apps.Validation
module Flash = Hpcfs_apps.Flash
module Report = Hpcfs_core.Report
module Conflict = Hpcfs_core.Conflict
module Happens_before = Hpcfs_core.Happens_before
module Consistency = Hpcfs_fs.Consistency

let nprocs = 32

let summarize label report =
  let s = Report.session_summary report in
  let c = Report.commit_summary report in
  Printf.printf
    "%-28s session: WAW-S=%d WAW-D=%d | commit: WAW-S=%d WAW-D=%d\n" label
    s.Conflict.waw_s s.Conflict.waw_d c.Conflict.waw_s c.Conflict.waw_d

let () =
  print_endline "--- 1+2: conflict detection on the trace ---";
  let flash = Option.get (Registry.find "FLASH-fbs") in
  let result = Runner.run ~nprocs flash.Registry.body in
  let report = Report.analyze ~nprocs result.Runner.records in
  summarize "FLASH (default)" report;

  (* Where do the conflicts live?  All in the HDF5 metadata region. *)
  let in_metadata =
    List.for_all
      (fun c ->
        c.Conflict.first.Hpcfs_core.Access.iv.Hpcfs_util.Interval.lo
        < Hpcfs_hdf5.Hdf5.metadata_region_size)
      report.Report.session_conflicts
  in
  Printf.printf "all conflicts are HDF5 metadata rewrites: %b\n" in_metadata;

  (* The conflicts are race-free: FLASH's own barriers order them. *)
  let hb = Happens_before.build ~nprocs result.Runner.events in
  Printf.printf "every cross-process conflict is synchronized by MPI: %b\n\n"
    (Happens_before.race_free hb report.Report.session_conflicts);

  print_endline "--- 3: what actually happens on a relaxed PFS ---";
  let outcomes = Validation.validate ~nprocs flash.Registry.body in
  List.iter
    (fun o ->
      Printf.printf "%-22s stale reads: %d, corrupted files: %d/%d -> %s\n"
        (Consistency.name o.Validation.semantics)
        o.Validation.stale_reads o.Validation.corrupted_files
        o.Validation.files
        (if Validation.correct o then "correct" else "INCORRECT"))
    outcomes;
  print_newline ();

  print_endline "--- 4: the one-line fix (collective metadata mode) ---";
  let fixed = Runner.run ~nprocs Flash.run_fbs_collective_metadata in
  let fixed_report = Report.analyze ~nprocs fixed.Runner.records in
  summarize "FLASH (collective metadata)" fixed_report;
  let s = Report.session_summary fixed_report in
  Printf.printf
    "cross-process conflicts after the fix: %d (same-process remain: %d,\n\
     which every PFS except BurstFS orders correctly)\n"
    (s.Conflict.waw_d + s.Conflict.raw_d)
    (s.Conflict.waw_s + s.Conflict.raw_s)
