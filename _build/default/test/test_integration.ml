(* Cross-layer integration properties: random POSIX workloads executed
   through the full simulator stack, then checked for agreement between
   the live file system state and what the offline analysis reconstructs
   from the trace — plus consistency-model invariants over the same
   workloads. *)

module Sched = Hpcfs_sim.Sched
module Consistency = Hpcfs_fs.Consistency
module Pfs = Hpcfs_fs.Pfs
module Posix = Hpcfs_posix.Posix
module Collector = Hpcfs_trace.Collector
module Offsets = Hpcfs_core.Offsets
module Overlap = Hpcfs_core.Overlap
module Conflict = Hpcfs_core.Conflict
module Access = Hpcfs_core.Access
module Interval = Hpcfs_util.Interval
module Profile = Hpcfs_core.Profile
module Report = Hpcfs_core.Report

(* A random workload step for one simulated process. *)
type step =
  | S_write of int (* length *)
  | S_read of int
  | S_pwrite of int * int (* offset, length *)
  | S_seek_set of int
  | S_seek_end of int
  | S_fsync
  | S_reopen of bool (* append? *)

let step_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun n -> S_write (1 + n)) (int_bound 64));
        (2, map (fun n -> S_read (1 + n)) (int_bound 64));
        (2, map2 (fun o n -> S_pwrite (o, 1 + n)) (int_bound 256) (int_bound 64));
        (1, map (fun o -> S_seek_set o) (int_bound 256));
        (1, map (fun o -> S_seek_end (-o)) (int_bound 16));
        (1, return S_fsync);
        (1, map (fun b -> S_reopen b) bool);
      ])

let workload_gen =
  QCheck.Gen.(
    let* nprocs = int_range 1 4 in
    let* steps = list_size (int_range 1 40) step_gen in
    return (nprocs, steps))

let arbitrary_workload =
  QCheck.make
    ~print:(fun (nprocs, steps) ->
      Printf.sprintf "%d procs, %d steps" nprocs (List.length steps))
    workload_gen

(* Execute the workload: every rank applies the same step list to its own
   file (sizes offset by rank so files differ). *)
let execute ?(semantics = Consistency.Strong) (nprocs, steps) =
  let pfs = Pfs.create semantics in
  let collector = Collector.create () in
  let ctx = Posix.make_ctx pfs collector in
  Sched.run ~nprocs (fun rank ->
      let path = Printf.sprintf "/w%d" rank in
      let fd =
        ref (Posix.openf ctx path [ Posix.O_RDWR; Posix.O_CREAT ])
      in
      List.iter
        (fun step ->
          match step with
          | S_write n -> ignore (Posix.write ctx !fd (Bytes.make n 'w'))
          | S_read n -> ignore (Posix.read ctx !fd n)
          | S_pwrite (off, n) ->
            ignore (Posix.pwrite ctx !fd ~off (Bytes.make n 'p'))
          | S_seek_set off -> ignore (Posix.lseek ctx !fd off Posix.SEEK_SET)
          | S_seek_end off ->
            (* Clamp: lseek rejects negative positions. *)
            let size = Pfs.file_size pfs path in
            let off = max (-size) off in
            ignore (Posix.lseek ctx !fd off Posix.SEEK_END)
          | S_fsync -> Posix.fsync ctx !fd
          | S_reopen append ->
            Posix.close ctx !fd;
            let flags =
              if append then [ Posix.O_RDWR; Posix.O_APPEND ]
              else [ Posix.O_RDWR ]
            in
            fd := Posix.openf ctx path flags)
        steps;
      Posix.close ctx !fd);
  (pfs, Collector.records collector)

(* Property: the offline offset reconstruction recovers the exact file
   sizes the live file system ended up with. *)
let prop_reconstructed_sizes_match =
  QCheck.Test.make ~name:"offsets reconstruction matches live file sizes"
    ~count:150 arbitrary_workload (fun workload ->
      let nprocs, _ = workload in
      let pfs, records = execute workload in
      let resolved = Offsets.resolve records in
      let size_of_accesses path =
        List.fold_left
          (fun acc a ->
            if a.Access.file = path && Access.is_write a then
              max acc a.Access.iv.Interval.hi
            else acc)
          0 resolved.Offsets.accesses
      in
      resolved.Offsets.skipped = 0
      && List.for_all
           (fun rank ->
             let path = Printf.sprintf "/w%d" rank in
             size_of_accesses path = Pfs.file_size pfs path)
           (List.init nprocs Fun.id))

(* Property: no workload is ever stale under strong semantics, and each
   rank working on its own file is never stale under any semantics
   (read-your-writes). *)
let prop_private_files_never_stale =
  QCheck.Test.make ~name:"private files never stale under any semantics"
    ~count:100 arbitrary_workload (fun workload ->
      List.for_all
        (fun semantics ->
          let pfs, _ = execute ~semantics workload in
          (Pfs.stats pfs).Pfs.stale_reads = 0)
        [ Consistency.Strong; Consistency.Commit; Consistency.Session;
          Consistency.Eventual { delay = 10 } ])

(* Property: on trace-derived accesses, every commit-semantics conflict is
   also a session-semantics conflict (a close is a commit, so whatever
   session tolerates, commit tolerates too). *)
let prop_commit_conflicts_subset_of_session =
  QCheck.Test.make ~name:"commit conflicts are a subset of session conflicts"
    ~count:150 arbitrary_workload (fun workload ->
      let _, records = execute workload in
      let resolved = Offsets.resolve records in
      let pairs = Overlap.detect resolved.Offsets.accesses in
      let key c =
        (c.Conflict.first.Access.time, c.Conflict.second.Access.time)
      in
      let commit =
        List.map key (Conflict.of_pairs Conflict.Commit_semantics pairs)
      in
      let session =
        List.map key (Conflict.of_pairs Conflict.Session_semantics pairs)
      in
      List.for_all (fun k -> List.mem k session) commit)

(* Property: the two conflict-checking methods of Section 5.2 agree on
   arbitrary trace-derived workloads. *)
let prop_conflict_modes_agree =
  QCheck.Test.make ~name:"annotated and table modes agree on random traces"
    ~count:150 arbitrary_workload (fun workload ->
      let _, records = execute workload in
      let resolved = Offsets.resolve records in
      let pairs = Overlap.detect resolved.Offsets.accesses in
      let key c =
        (c.Conflict.first.Access.time, c.Conflict.second.Access.time)
      in
      List.for_all
        (fun semantics ->
          let a =
            List.sort compare
              (List.map key (Conflict.of_pairs ~mode:Conflict.Annotated semantics pairs))
          in
          let b =
            List.sort compare
              (List.map key
                 (Conflict.of_pairs
                    ~mode:(Conflict.Tables resolved.Offsets.events)
                    semantics pairs))
          in
          a = b)
        [ Conflict.Commit_semantics; Conflict.Session_semantics ])

(* Property: profile bookkeeping is consistent with the analysis. *)
let prop_profile_consistent =
  QCheck.Test.make ~name:"profile totals match analysis" ~count:80
    arbitrary_workload (fun workload ->
      let nprocs, _ = workload in
      let _, records = execute workload in
      let report = Report.analyze ~nprocs records in
      let profile = Profile.build records report in
      let file_reads = List.fold_left (fun a f -> a + f.Profile.f_reads) 0 profile.Profile.files in
      let file_writes = List.fold_left (fun a f -> a + f.Profile.f_writes) 0 profile.Profile.files in
      let reads, writes =
        List.fold_left
          (fun (r, w) a ->
            if Access.is_write a then (r, w + 1) else (r + 1, w))
          (0, 0) report.Report.accesses
      in
      profile.Profile.total_records = List.length records
      && file_reads = reads && file_writes = writes
      && List.fold_left (fun a (_, _, n) -> a + n) 0 profile.Profile.size_histogram
         = reads + writes)

(* Deterministic replay: the same workload produces an identical trace. *)
let prop_deterministic_replay =
  QCheck.Test.make ~name:"simulation is deterministic" ~count:50
    arbitrary_workload (fun workload ->
      let _, r1 = execute workload in
      let _, r2 = execute workload in
      List.equal
        (fun a b ->
          Hpcfs_trace.Record.to_line a = Hpcfs_trace.Record.to_line b)
        r1 r2)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_reconstructed_sizes_match;
    QCheck_alcotest.to_alcotest prop_private_files_never_stale;
    QCheck_alcotest.to_alcotest prop_commit_conflicts_subset_of_session;
    QCheck_alcotest.to_alcotest prop_conflict_modes_agree;
    QCheck_alcotest.to_alcotest prop_profile_consistent;
    QCheck_alcotest.to_alcotest prop_deterministic_replay;
  ]
