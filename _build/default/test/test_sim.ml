(* Tests for the cooperative scheduler and the MPI model. *)

module Sched = Hpcfs_sim.Sched
module Mpi = Hpcfs_mpi.Mpi

let test_run_all_ranks () =
  let seen = Array.make 4 false in
  Sched.run ~nprocs:4 (fun r -> seen.(r) <- true);
  Alcotest.(check (array bool)) "all ranks ran" [| true; true; true; true |]
    seen

let test_self_and_nprocs () =
  Sched.run ~nprocs:3 (fun r ->
      Alcotest.(check int) "self" r (Sched.self ());
      Alcotest.(check int) "nprocs" 3 (Sched.nprocs ()))

let test_tick_monotone_unique () =
  let times = ref [] in
  Sched.run ~nprocs:4 (fun _ ->
      for _ = 1 to 10 do
        times := Sched.tick () :: !times;
        Sched.yield ()
      done);
  let ts = List.sort compare !times in
  let rec distinct = function
    | a :: (b :: _ as rest) -> a <> b && distinct rest
    | _ -> true
  in
  Alcotest.(check bool) "all timestamps unique" true (distinct ts);
  Alcotest.(check int) "count" 40 (List.length ts)

let test_wait_until () =
  let flag = ref false in
  let order = ref [] in
  Sched.run ~nprocs:2 (fun r ->
      if r = 0 then begin
        Sched.wait_until (fun () -> !flag);
        order := "waiter" :: !order
      end
      else begin
        Sched.yield ();
        flag := true;
        order := "setter" :: !order
      end);
  Alcotest.(check (list string)) "setter ran before waiter"
    [ "waiter"; "setter" ] !order

let test_deadlock_detected () =
  Alcotest.check_raises "deadlock raises"
    (Sched.Deadlock "ranks blocked: 0,1") (fun () ->
      Sched.run ~nprocs:2 (fun _ -> Sched.wait_until (fun () -> false)))

let test_exception_propagates () =
  Alcotest.check_raises "body exception escapes" Exit (fun () ->
      Sched.run ~nprocs:2 (fun r -> if r = 1 then raise Exit))

let test_not_reentrant_outside () =
  Alcotest.check_raises "self outside run"
    (Invalid_argument "Sched.self: no simulation running") (fun () ->
      ignore (Sched.self ()))

let test_barrier_synchronizes () =
  let comm = Mpi.world () in
  let phase = Array.make 8 0 in
  Sched.run ~nprocs:8 (fun r ->
      phase.(r) <- 1;
      Mpi.barrier comm;
      (* After the barrier, every rank must have completed phase 1. *)
      Array.iter (fun p -> Alcotest.(check int) "phase complete" 1 p) phase;
      ignore r)

let test_barrier_repeated () =
  let comm = Mpi.world () in
  let counter = ref 0 in
  Sched.run ~nprocs:4 (fun _ ->
      for _ = 1 to 5 do
        incr counter;
        Mpi.barrier comm
      done);
  Alcotest.(check int) "all iterations" 20 !counter

let test_send_recv () =
  let comm = Mpi.world () in
  Sched.run ~nprocs:2 (fun r ->
      if r = 0 then Mpi.send comm ~dst:1 ~tag:7 (Mpi.P_int 99)
      else begin
        match Mpi.recv comm ~src:0 ~tag:7 with
        | Mpi.P_int v -> Alcotest.(check int) "payload" 99 v
        | _ -> Alcotest.fail "wrong payload"
      end)

let test_send_recv_fifo_per_channel () =
  let comm = Mpi.world () in
  Sched.run ~nprocs:2 (fun r ->
      if r = 0 then
        for i = 1 to 10 do
          Mpi.send comm ~dst:1 ~tag:0 (Mpi.P_int i)
        done
      else
        for i = 1 to 10 do
          match Mpi.recv comm ~src:0 ~tag:0 with
          | Mpi.P_int v -> Alcotest.(check int) "fifo order" i v
          | _ -> Alcotest.fail "wrong payload"
        done)

let test_bcast () =
  let comm = Mpi.world () in
  Sched.run ~nprocs:6 (fun r ->
      let v = if r = 2 then Mpi.P_int 1234 else Mpi.P_unit in
      match Mpi.bcast comm ~root:2 v with
      | Mpi.P_int x -> Alcotest.(check int) "bcast value" 1234 x
      | _ -> Alcotest.fail "wrong payload")

let test_gather () =
  let comm = Mpi.world () in
  Sched.run ~nprocs:5 (fun r ->
      match Mpi.gather comm ~root:0 (Mpi.P_int (r * r)) with
      | Some values ->
        Alcotest.(check int) "root is rank 0" 0 r;
        Array.iteri
          (fun i p ->
            match p with
            | Mpi.P_int v -> Alcotest.(check int) "gathered" (i * i) v
            | _ -> Alcotest.fail "wrong payload")
          values
      | None -> Alcotest.(check bool) "non-root gets None" true (r <> 0))

let test_allgather () =
  let comm = Mpi.world () in
  Sched.run ~nprocs:4 (fun r ->
      let values = Mpi.allgather comm (Mpi.P_int (100 + r)) in
      Array.iteri
        (fun i p ->
          match p with
          | Mpi.P_int v -> Alcotest.(check int) "allgathered" (100 + i) v
          | _ -> Alcotest.fail "wrong payload")
        values)

let test_reduce_allreduce () =
  let comm = Mpi.world () in
  Sched.run ~nprocs:4 (fun r ->
      (match Mpi.reduce comm ~root:0 Mpi.Sum (r + 1) with
      | Some total -> Alcotest.(check int) "reduce sum" 10 total
      | None -> ());
      let m = Mpi.allreduce comm Mpi.Max r in
      Alcotest.(check int) "allreduce max" 3 m;
      let s = Mpi.allreduce comm Mpi.Sum 1 in
      Alcotest.(check int) "allreduce count" 4 s;
      let mn = Mpi.allreduce comm Mpi.Min (10 - r) in
      Alcotest.(check int) "allreduce min" 7 mn)

let test_scatter () =
  let comm = Mpi.world () in
  Sched.run ~nprocs:3 (fun r ->
      let values =
        if r = 0 then Some (Array.init 3 (fun i -> Mpi.P_int (i * 7)))
        else None
      in
      match Mpi.scatter comm ~root:0 values with
      | Mpi.P_int v -> Alcotest.(check int) "scattered" (r * 7) v
      | _ -> Alcotest.fail "wrong payload")

let test_events_recorded () =
  let comm = Mpi.world () in
  Sched.run ~nprocs:2 (fun r ->
      if r = 0 then Mpi.send comm ~dst:1 ~tag:3 Mpi.P_unit
      else ignore (Mpi.recv comm ~src:0 ~tag:3);
      Mpi.barrier comm);
  let events = Mpi.events comm in
  let sends =
    List.filter (function Mpi.E_send _ -> true | _ -> false) events
  in
  let recvs =
    List.filter (function Mpi.E_recv _ -> true | _ -> false) events
  in
  let barriers =
    List.filter (function Mpi.E_barrier _ -> true | _ -> false) events
  in
  Alcotest.(check int) "one send" 1 (List.length sends);
  Alcotest.(check int) "one recv" 1 (List.length recvs);
  Alcotest.(check int) "two barrier records" 2 (List.length barriers);
  (* The send must timestamp before the matching receive completes. *)
  match (sends, recvs) with
  | [ Mpi.E_send s ], [ Mpi.E_recv r ] ->
    Alcotest.(check bool) "send before recv" true (s.time < r.time)
  | _ -> Alcotest.fail "unexpected events"

let test_send_happens_before_recv_many_ranks () =
  let comm = Mpi.world () in
  Sched.run ~nprocs:8 (fun r ->
      (* Ring: each rank sends to its successor. *)
      let next = (r + 1) mod 8 and prev = (r + 7) mod 8 in
      Mpi.send comm ~dst:next ~tag:1 (Mpi.P_int r);
      match Mpi.recv comm ~src:prev ~tag:1 with
      | Mpi.P_int v -> Alcotest.(check int) "ring value" prev v
      | _ -> Alcotest.fail "wrong payload");
  List.iter
    (fun e ->
      match e with
      | Mpi.E_recv _ | Mpi.E_send _ | Mpi.E_barrier _ | Mpi.E_coll _ -> ())
    (Mpi.events comm)

let suite =
  [
    Alcotest.test_case "run all ranks" `Quick test_run_all_ranks;
    Alcotest.test_case "self/nprocs" `Quick test_self_and_nprocs;
    Alcotest.test_case "tick unique" `Quick test_tick_monotone_unique;
    Alcotest.test_case "wait_until" `Quick test_wait_until;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "no ambient outside run" `Quick test_not_reentrant_outside;
    Alcotest.test_case "barrier synchronizes" `Quick test_barrier_synchronizes;
    Alcotest.test_case "barrier repeated" `Quick test_barrier_repeated;
    Alcotest.test_case "send/recv" `Quick test_send_recv;
    Alcotest.test_case "fifo per channel" `Quick test_send_recv_fifo_per_channel;
    Alcotest.test_case "bcast" `Quick test_bcast;
    Alcotest.test_case "gather" `Quick test_gather;
    Alcotest.test_case "allgather" `Quick test_allgather;
    Alcotest.test_case "reduce/allreduce" `Quick test_reduce_allreduce;
    Alcotest.test_case "scatter" `Quick test_scatter;
    Alcotest.test_case "events recorded" `Quick test_events_recorded;
    Alcotest.test_case "ring exchange" `Quick test_send_happens_before_recv_many_ranks;
  ]
