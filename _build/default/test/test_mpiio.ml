(* Tests for the MPI-IO layer, especially two-phase collective buffering. *)

module Sched = Hpcfs_sim.Sched
module Mpi = Hpcfs_mpi.Mpi
module Consistency = Hpcfs_fs.Consistency
module Pfs = Hpcfs_fs.Pfs
module Fdata = Hpcfs_fs.Fdata
module Posix = Hpcfs_posix.Posix
module Mpiio = Hpcfs_mpiio.Mpiio
module Collector = Hpcfs_trace.Collector
module Record = Hpcfs_trace.Record

type harness = {
  pfs : Pfs.t;
  collector : Collector.t;
  mpiio : Mpiio.ctx;
}

let make_harness ?(cb_nodes = 3) () =
  let pfs = Pfs.create Consistency.Strong in
  let collector = Collector.create () in
  let posix = Posix.make_ctx pfs collector in
  let comm = Mpi.world () in
  let mpiio = Mpiio.make_ctx ~cb_nodes posix comm in
  { pfs; collector; mpiio }

let run ?(nprocs = 8) h body = Sched.run ~nprocs (fun _ -> body h.mpiio)

let file_contents h path =
  Bytes.to_string (Pfs.read_back h.pfs ~time:(1 lsl 40) path).Fdata.data

let test_open_write_at_close () =
  let h = make_harness () in
  run h (fun m ->
      let fh = Mpiio.file_open m "/shared" Mpiio.mode_rdwr_create in
      let r = Mpi.rank (Mpiio.comm m) in
      Mpiio.write_at m fh ~off:(r * 4) (Bytes.make 4 (Char.chr (65 + r)));
      Mpiio.file_close m fh);
  Alcotest.(check string) "tiled content" "AAAABBBBCCCCDDDDEEEEFFFFGGGGHHHH"
    (file_contents h "/shared")

let test_write_at_all_content () =
  let h = make_harness () in
  run h (fun m ->
      let fh = Mpiio.file_open m "/coll" Mpiio.mode_rdwr_create in
      let r = Mpi.rank (Mpiio.comm m) in
      Mpiio.write_at_all m fh ~off:(r * 4) (Bytes.make 4 (Char.chr (97 + r)));
      Mpiio.file_close m fh);
  Alcotest.(check string) "collective content"
    "aaaabbbbccccddddeeeeffffgggghhhh" (file_contents h "/coll")

let test_write_at_all_only_aggregators_write () =
  let h = make_harness ~cb_nodes:3 () in
  run h (fun m ->
      let fh = Mpiio.file_open m "/agg" Mpiio.mode_rdwr_create in
      let r = Mpi.rank (Mpiio.comm m) in
      Mpiio.write_at_all m fh ~off:(r * 100) (Bytes.make 100 'x');
      Mpiio.file_close m fh);
  let writers =
    Collector.records h.collector
    |> List.filter (fun r ->
           r.Record.layer = Record.L_posix
           && r.Record.func = "pwrite")
    |> List.map (fun r -> r.Record.rank)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "exactly the aggregators"
    (List.sort compare (Mpiio.aggregators h.mpiio))
    writers

let test_read_at_all () =
  let h = make_harness () in
  run h (fun m ->
      let fh = Mpiio.file_open m "/rall" Mpiio.mode_rdwr_create in
      let r = Mpi.rank (Mpiio.comm m) in
      Mpiio.write_at_all m fh ~off:(r * 4) (Bytes.make 4 (Char.chr (48 + r)));
      Mpiio.file_sync m fh;
      let mine = Mpiio.read_at_all m fh ~off:(r * 4) 4 in
      Alcotest.(check string) "read own tile"
        (String.make 4 (Char.chr (48 + r)))
        (Bytes.to_string mine);
      let other = Mpiio.read_at_all m fh ~off:(((r + 1) mod 8) * 4) 4 in
      Alcotest.(check string) "read neighbour tile"
        (String.make 4 (Char.chr (48 + ((r + 1) mod 8))))
        (Bytes.to_string other);
      Mpiio.file_close m fh)

let test_collective_with_empty_contribution () =
  let h = make_harness () in
  run h (fun m ->
      let fh = Mpiio.file_open m "/sparse" Mpiio.mode_rdwr_create in
      let r = Mpi.rank (Mpiio.comm m) in
      (* Odd ranks contribute nothing. *)
      let data = if r mod 2 = 0 then Bytes.make 4 'e' else Bytes.create 0 in
      Mpiio.write_at_all m fh ~off:(r * 4) data;
      Mpiio.file_close m fh);
  Alcotest.(check string) "only even tiles"
    "eeee\000\000\000\000eeee\000\000\000\000eeee\000\000\000\000eeee"
    (String.sub (file_contents h "/sparse") 0 28)

let test_all_empty_collective () =
  let h = make_harness () in
  run h (fun m ->
      let fh = Mpiio.file_open m "/empty" Mpiio.mode_rdwr_create in
      Mpiio.write_at_all m fh ~off:0 (Bytes.create 0);
      Mpiio.file_close m fh);
  Alcotest.(check string) "nothing written" "" (file_contents h "/empty")

let test_solo_open () =
  let h = make_harness () in
  run h (fun m ->
      let r = Mpi.rank (Mpiio.comm m) in
      let fh =
        Mpiio.file_open_self m
          (Printf.sprintf "/solo.%d" r)
          Mpiio.mode_wronly_create
      in
      Mpiio.write_at m fh ~off:0 (Bytes.make 2 (Char.chr (65 + r)));
      Mpiio.file_close m fh);
  Alcotest.(check string) "per-rank file" "CC" (file_contents h "/solo.2")

let test_layer_records () =
  let h = make_harness () in
  run h ~nprocs:4 (fun m ->
      let fh = Mpiio.file_open m "/layers" Mpiio.mode_rdwr_create in
      Mpiio.write_at m fh ~off:0 (Bytes.make 1 'z');
      Mpiio.file_close m fh);
  let records = Collector.records h.collector in
  let mpiio_funcs =
    records
    |> List.filter (fun r -> r.Record.layer = Record.L_mpiio)
    |> List.map (fun r -> r.Record.func)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "MPI-IO layer calls"
    [ "MPI_File_close"; "MPI_File_open"; "MPI_File_write_at" ]
    mpiio_funcs;
  (* The POSIX calls underneath must be tagged as MPI-issued. *)
  List.iter
    (fun r ->
      if r.Record.layer = Record.L_posix then
        Alcotest.(check bool) "posix origin is mpi" true
          (r.Record.origin = Record.O_mpi))
    records

let test_aggregator_selection () =
  let h = make_harness ~cb_nodes:4 () in
  run h ~nprocs:16 (fun m ->
      if Mpi.rank (Mpiio.comm m) = 0 then begin
        Alcotest.(check (list int)) "evenly spaced" [ 0; 4; 8; 12 ]
          (Mpiio.aggregators m);
        Alcotest.(check bool) "rank0 is aggregator" true (Mpiio.is_aggregator m)
      end)

let suite =
  [
    Alcotest.test_case "independent write_at" `Quick test_open_write_at_close;
    Alcotest.test_case "collective content" `Quick test_write_at_all_content;
    Alcotest.test_case "aggregators do the writes" `Quick
      test_write_at_all_only_aggregators_write;
    Alcotest.test_case "collective read" `Quick test_read_at_all;
    Alcotest.test_case "sparse collective" `Quick
      test_collective_with_empty_contribution;
    Alcotest.test_case "all-empty collective" `Quick test_all_empty_collective;
    Alcotest.test_case "solo open" `Quick test_solo_open;
    Alcotest.test_case "layer records" `Quick test_layer_records;
    Alcotest.test_case "aggregator selection" `Quick test_aggregator_selection;
  ]
