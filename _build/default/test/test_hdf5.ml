(* Tests for the HDF5 model: layout, metadata cache behaviour, collective
   metadata mode, and the conflict-generating flush pattern. *)

module Sched = Hpcfs_sim.Sched
module Mpi = Hpcfs_mpi.Mpi
module Consistency = Hpcfs_fs.Consistency
module Pfs = Hpcfs_fs.Pfs
module Posix = Hpcfs_posix.Posix
module Mpiio = Hpcfs_mpiio.Mpiio
module Hdf5 = Hpcfs_hdf5.Hdf5
module Collector = Hpcfs_trace.Collector
module Record = Hpcfs_trace.Record

type harness = {
  pfs : Pfs.t;
  collector : Collector.t;
  posix : Posix.ctx;
  mpiio : Mpiio.ctx;
}

let make_harness () =
  Hdf5.reset_registries ();
  let pfs = Pfs.create Consistency.Strong in
  let collector = Collector.create () in
  let posix = Posix.make_ctx pfs collector in
  let comm = Mpi.world () in
  let mpiio = Mpiio.make_ctx ~cb_nodes:2 posix comm in
  { pfs; collector; posix; mpiio }

let posix_writes h =
  Collector.records h.collector
  |> List.filter (fun r ->
         r.Record.layer = Record.L_posix
         && (r.Record.func = "pwrite" || r.Record.func = "write"))

let test_serial_dataset_roundtrip () =
  let h = make_harness () in
  Sched.run ~nprocs:1 (fun _ ->
      let f = Hdf5.create (Hdf5.B_posix h.posix) "/file.h5" in
      let ds = Hdf5.create_dataset f "data" ~nbytes:1024 in
      Hdf5.write_independent ds ~off:0 (Bytes.make 1024 'v');
      let back = Hdf5.read ds ~off:100 24 in
      Alcotest.(check string) "readback" (String.make 24 'v')
        (Bytes.to_string back);
      Hdf5.close f)

let test_data_above_metadata_region () =
  let h = make_harness () in
  Sched.run ~nprocs:1 (fun _ ->
      let f = Hdf5.create (Hdf5.B_posix h.posix) "/file.h5" in
      let a = Hdf5.create_dataset f "a" ~nbytes:100 in
      let b = Hdf5.create_dataset f "b" ~nbytes:100 in
      Alcotest.(check bool) "a above metadata" true
        (Hdf5.dataset_offset a >= Hdf5.metadata_region_size);
      Alcotest.(check bool) "b above a" true
        (Hdf5.dataset_offset b > Hdf5.dataset_offset a);
      Hdf5.close f)

let test_metadata_written_once_without_flush () =
  let h = make_harness () in
  Sched.run ~nprocs:1 (fun _ ->
      let f = Hdf5.create (Hdf5.B_posix h.posix) "/once.h5" in
      let ds = Hdf5.create_dataset f "d" ~nbytes:64 in
      Hdf5.write_independent ds ~off:0 (Bytes.make 64 'q');
      Hdf5.close f);
  (* Superblock written exactly once (at close): no same-file overlap. *)
  let sb_writes =
    posix_writes h
    |> List.filter (fun r -> r.Record.offset = Some 0)
  in
  Alcotest.(check int) "superblock written once" 1 (List.length sb_writes)

let test_flush_rewrites_metadata () =
  let h = make_harness () in
  Sched.run ~nprocs:1 (fun _ ->
      let f = Hdf5.create (Hdf5.B_posix h.posix) "/multi.h5" in
      for i = 0 to 2 do
        let ds =
          Hdf5.create_dataset f (Printf.sprintf "d%d" i) ~nbytes:64
        in
        Hdf5.write_independent ds ~off:0 (Bytes.make 64 'w');
        Hdf5.flush f
      done;
      Hdf5.close f);
  let sb_writes =
    posix_writes h |> List.filter (fun r -> r.Record.offset = Some 0)
  in
  (* One superblock write per flush (the close flush has nothing dirty if
     nothing changed after the last explicit flush). *)
  Alcotest.(check int) "superblock written per flush" 3 (List.length sb_writes)

let test_open_reads_superblock_and_header () =
  let h = make_harness () in
  Sched.run ~nprocs:1 (fun _ ->
      let f = Hdf5.create (Hdf5.B_posix h.posix) "/r.h5" in
      let ds = Hdf5.create_dataset f "d" ~nbytes:64 in
      Hdf5.write_independent ds ~off:0 (Bytes.make 64 'r');
      Hdf5.close f;
      let f2 = Hdf5.open_ (Hdf5.B_posix h.posix) "/r.h5" in
      let ds2 = Hdf5.open_dataset f2 "d" in
      let back = Hdf5.read ds2 ~off:0 64 in
      Alcotest.(check string) "cross-instance read" (String.make 64 'r')
        (Bytes.to_string back);
      Hdf5.close f2);
  let reads =
    Collector.records h.collector
    |> List.filter (fun r ->
           r.Record.layer = Record.L_posix && r.Record.func = "pread")
  in
  (* Superblock read at open + header read at H5Dopen + data read. *)
  Alcotest.(check bool) "low-offset metadata reads" true
    (List.exists (fun r -> r.Record.offset = Some 0) reads
    && List.length reads >= 3)

let test_attributes () =
  let h = make_harness () in
  Sched.run ~nprocs:1 (fun _ ->
      let f = Hdf5.create (Hdf5.B_posix h.posix) "/attr.h5" in
      Hdf5.write_attribute f "Time" (Bytes.of_string "12345");
      let v = Hdf5.read_attribute f "Time" 5 in
      Alcotest.(check string) "attribute roundtrip" "12345" (Bytes.to_string v);
      Hdf5.close f)

let test_parallel_metadata_participants () =
  let h = make_harness () in
  Sched.run ~nprocs:8 (fun _ ->
      let f = Hdf5.create (Hdf5.B_mpiio h.mpiio) "/par.h5" in
      let ds = Hdf5.create_dataset f "d" ~nbytes:(8 * 64) in
      Hdf5.write_independent ds ~off:(Mpi.rank (Mpiio.comm h.mpiio) * 64)
        (Bytes.make 64 'p');
      Hdf5.flush f;
      Hdf5.close f);
  let meta_writer_ranks =
    posix_writes h
    |> List.filter (fun r ->
           match r.Record.offset with
           | Some off -> off < Hdf5.metadata_region_size
           | None -> false)
    |> List.map (fun r -> r.Record.rank)
    |> List.sort_uniq compare
  in
  (* Half the ranks participate in metadata writes (the paper's ~30/64). *)
  List.iter
    (fun r ->
      Alcotest.(check int) "participants are even ranks" 0 (r mod 2))
    meta_writer_ranks;
  Alcotest.(check bool) "more than one metadata writer" true
    (List.length meta_writer_ranks > 1)

let test_collective_metadata_mode () =
  let h = make_harness () in
  Sched.run ~nprocs:8 (fun _ ->
      let f =
        Hdf5.create ~collective_metadata:true (Hdf5.B_mpiio h.mpiio) "/cm.h5"
      in
      let ds = Hdf5.create_dataset f "d" ~nbytes:(8 * 64) in
      Hdf5.write_independent ds ~off:(Mpi.rank (Mpiio.comm h.mpiio) * 64)
        (Bytes.make 64 'c');
      Hdf5.flush f;
      Hdf5.close f);
  let meta_writer_ranks =
    posix_writes h
    |> List.filter (fun r ->
           match r.Record.offset with
           | Some off -> off < Hdf5.metadata_region_size
           | None -> false)
    |> List.map (fun r -> r.Record.rank)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "rank 0 writes all metadata" [ 0 ]
    meta_writer_ranks

let test_hdf5_layer_records () =
  let h = make_harness () in
  Sched.run ~nprocs:1 (fun _ ->
      let f = Hdf5.create (Hdf5.B_posix h.posix) "/rec.h5" in
      let ds = Hdf5.create_dataset f "d" ~nbytes:10 in
      Hdf5.write_independent ds ~off:0 (Bytes.make 10 'x');
      Hdf5.flush f;
      Hdf5.close f);
  let hdf5_funcs =
    Collector.records h.collector
    |> List.filter (fun r -> r.Record.layer = Record.L_hdf5)
    |> List.map (fun r -> r.Record.func)
  in
  Alcotest.(check (list string)) "API calls in order"
    [ "H5Fcreate"; "H5Dcreate"; "H5Dwrite"; "H5Fflush"; "H5Fclose" ]
    hdf5_funcs

let test_figure3_probe_ops () =
  let h = make_harness () in
  Sched.run ~nprocs:1 (fun _ ->
      let f = Hdf5.create (Hdf5.B_posix h.posix) "/probe.h5" in
      let ds = Hdf5.create_dataset f "d" ~nbytes:10 in
      Hdf5.write_independent ds ~off:0 (Bytes.make 10 'x');
      Hdf5.close f;
      let f2 = Hdf5.open_ (Hdf5.B_posix h.posix) "/probe.h5" in
      Hdf5.close f2);
  let hdf5_posix_funcs =
    Collector.records h.collector
    |> List.filter (fun r ->
           r.Record.layer = Record.L_posix && r.Record.origin = Record.O_hdf5)
    |> List.map (fun r -> r.Record.func)
    |> List.sort_uniq compare
  in
  List.iter
    (fun op ->
      Alcotest.(check bool) (op ^ " issued by HDF5") true
        (List.mem op hdf5_posix_funcs))
    [ "getcwd"; "lstat"; "fstat"; "ftruncate"; "access" ]

let test_dataset_bounds () =
  let h = make_harness () in
  Sched.run ~nprocs:1 (fun _ ->
      let f = Hdf5.create (Hdf5.B_posix h.posix) "/bounds.h5" in
      let ds = Hdf5.create_dataset f "d" ~nbytes:10 in
      (match Hdf5.write_independent ds ~off:8 (Bytes.make 4 'x') with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "expected out-of-bounds failure");
      Hdf5.close f)

let suite =
  [
    Alcotest.test_case "serial roundtrip" `Quick test_serial_dataset_roundtrip;
    Alcotest.test_case "layout" `Quick test_data_above_metadata_region;
    Alcotest.test_case "metadata once without flush" `Quick
      test_metadata_written_once_without_flush;
    Alcotest.test_case "flush rewrites metadata" `Quick
      test_flush_rewrites_metadata;
    Alcotest.test_case "open reads metadata" `Quick
      test_open_reads_superblock_and_header;
    Alcotest.test_case "attributes" `Quick test_attributes;
    Alcotest.test_case "parallel metadata participants" `Quick
      test_parallel_metadata_participants;
    Alcotest.test_case "collective metadata mode" `Quick
      test_collective_metadata_mode;
    Alcotest.test_case "hdf5 layer records" `Quick test_hdf5_layer_records;
    Alcotest.test_case "figure 3 probe ops" `Quick test_figure3_probe_ops;
    Alcotest.test_case "dataset bounds" `Quick test_dataset_bounds;
  ]
