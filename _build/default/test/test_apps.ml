(* Integration tests: every application model must reproduce the paper's
   published Table 3 (X-Y pattern + structure) and Table 4 (session
   conflict matrix; commit semantics clears FLASH only) — plus the
   scale-independence claim of Section 6.1 and the race-freedom validation
   of Section 5.2. *)

module Registry = Hpcfs_apps.Registry
module Runner = Hpcfs_apps.Runner
module Validation = Hpcfs_apps.Validation
module Report = Hpcfs_core.Report
module Sharing = Hpcfs_core.Sharing
module Conflict = Hpcfs_core.Conflict
module Happens_before = Hpcfs_core.Happens_before
module Consistency = Hpcfs_fs.Consistency

let nprocs = 16

let analyzed = Hashtbl.create 32

(* Running the 25 configurations once and sharing the reports keeps the
   suite fast. *)
let report_of entry =
  match Hashtbl.find_opt analyzed (Registry.label entry) with
  | Some (result, report) -> (result, report)
  | None ->
    let result = Runner.run ~nprocs entry.Registry.body in
    let report = Report.analyze ~nprocs result.Runner.records in
    Hashtbl.replace analyzed (Registry.label entry) (result, report);
    (result, report)

let matrix_of_summary (s : Conflict.summary) =
  {
    Registry.waw_s = s.Conflict.waw_s > 0;
    waw_d = s.Conflict.waw_d > 0;
    raw_s = s.Conflict.raw_s > 0;
    raw_d = s.Conflict.raw_d > 0;
  }

let test_table3 entry () =
  let _, report = report_of entry in
  Alcotest.(check string) "X-Y pattern" entry.Registry.expected_xy
    (Sharing.xy_name report.Report.sharing.Sharing.xy);
  Alcotest.(check string) "structure" entry.Registry.expected_structure
    (Sharing.structure_name report.Report.sharing.Sharing.structure)

let test_table4 entry expected () =
  let _, report = report_of entry in
  let got = matrix_of_summary (Report.session_summary report) in
  Alcotest.(check bool) "WAW-S" expected.Registry.waw_s got.Registry.waw_s;
  Alcotest.(check bool) "WAW-D" expected.Registry.waw_d got.Registry.waw_d;
  Alcotest.(check bool) "RAW-S" expected.Registry.raw_s got.Registry.raw_s;
  Alcotest.(check bool) "RAW-D" expected.Registry.raw_d got.Registry.raw_d

let test_commit_clears_flash_only () =
  List.iter
    (fun entry ->
      let _, report = report_of entry in
      let session = Report.session_summary report in
      let commit = Report.commit_summary report in
      if entry.Registry.app = "FLASH" then begin
        Alcotest.(check bool) "FLASH conflicts under session" false
          (Conflict.no_conflicts session);
        Alcotest.(check bool) "FLASH clean under commit" true
          (Conflict.no_conflicts commit)
      end
      else
        (* For every other configuration the pattern is unchanged
           (Section 6.3: "the conflict pattern of the other applications
           was unchanged"). *)
        Alcotest.(check bool)
          (Registry.label entry ^ " unchanged under commit")
          true
          (matrix_of_summary session = matrix_of_summary commit))
    Registry.all

let test_only_flash_has_cross_process_conflicts () =
  List.iter
    (fun entry ->
      let _, report = report_of entry in
      let s = Report.session_summary report in
      let has_d = s.Conflict.waw_d > 0 || s.Conflict.raw_d > 0 in
      Alcotest.(check bool)
        (Registry.label entry ^ " D-conflicts iff FLASH")
        (entry.Registry.app = "FLASH") has_d)
    Registry.table4_entries

let test_conflicts_are_race_free () =
  (* Section 5.2's validation: every cross-process conflict must be ordered
     by the application's own synchronization. *)
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> Alcotest.fail ("missing entry " ^ name)
      | Some entry ->
        let result, report = report_of entry in
        let hb = Happens_before.build ~nprocs result.Runner.events in
        Alcotest.(check bool) (name ^ " race-free") true
          (Happens_before.race_free hb report.Report.session_conflicts))
    [ "FLASH-fbs"; "FLASH-nofbs"; "NWChem"; "MACSio"; "LAMMPS-ADIOS" ]

let test_scale_independence () =
  (* Section 6.1: the conflict pattern does not depend on the scale. *)
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> Alcotest.fail ("missing entry " ^ name)
      | Some entry ->
        let small =
          let r = Runner.run ~nprocs:8 entry.Registry.body in
          Report.analyze ~nprocs:8 r.Runner.records
        in
        let large =
          let r = Runner.run ~nprocs:32 entry.Registry.body in
          Report.analyze ~nprocs:32 r.Runner.records
        in
        Alcotest.(check bool) (name ^ " same conflict pattern") true
          (matrix_of_summary (Report.session_summary small)
          = matrix_of_summary (Report.session_summary large));
        Alcotest.(check string) (name ^ " same xy")
          (Sharing.xy_name small.Report.sharing.Sharing.xy)
          (Sharing.xy_name large.Report.sharing.Sharing.xy))
    [ "FLASH-fbs"; "ENZO"; "MACSio"; "VPIC-IO" ]

let test_no_unresolved_records () =
  List.iter
    (fun entry ->
      let _, report = report_of entry in
      Alcotest.(check int) (Registry.label entry ^ " fully resolved") 0
        report.Report.skipped)
    Registry.all

let test_validation_matches_prediction () =
  (* The PFS simulator agrees with the trace analysis: FLASH corrupts under
     session semantics, runs clean under commit; conflict-free apps and
     same-process-only apps run clean under both. *)
  List.iter
    (fun (name, expect_session_ok) ->
      match Registry.find name with
      | None -> Alcotest.fail ("missing entry " ^ name)
      | Some entry ->
        let outcomes = Validation.validate ~nprocs entry.Registry.body in
        List.iter
          (fun o ->
            match o.Validation.semantics with
            | Consistency.Strong ->
              Alcotest.(check bool) (name ^ " strong correct") true
                (Validation.correct o)
            | Consistency.Commit ->
              Alcotest.(check bool) (name ^ " commit correct") true
                (Validation.correct o)
            | Consistency.Session ->
              Alcotest.(check bool)
                (name ^ " session correctness")
                expect_session_ok (Validation.correct o)
            | Consistency.Eventual _ -> ())
          outcomes)
    [
      ("FLASH-fbs", false);
      ("LAMMPS-POSIX", true);
      ("HACC-IO-POSIX", true);
      ("NWChem", true);
      ("VPIC-IO", true);
    ]

let test_burstfs_exception () =
  (* Section 6.3: same-process conflicts are harmless on every surveyed
     PFS except BurstFS. *)
  let check name expect_ok =
    match Registry.find name with
    | None -> Alcotest.fail ("missing entry " ^ name)
    | Some entry ->
      let o = Validation.validate_burstfs ~nprocs entry.Registry.body in
      Alcotest.(check bool) (name ^ " on BurstFS-like PFS") expect_ok
        (Validation.correct o)
  in
  check "NWChem" false;
  check "GAMESS" false;
  check "LAMMPS-POSIX" true;
  check "HACC-IO-POSIX" true

let test_flash_collective_metadata_fix () =
  (* The paper's proposed fix: collective metadata mode removes the
     cross-process conflict. *)
  let result = Runner.run ~nprocs Hpcfs_apps.Flash.run_fbs_collective_metadata in
  let report = Report.analyze ~nprocs result.Runner.records in
  let s = Report.session_summary report in
  Alcotest.(check int) "no cross-process WAW" 0 s.Conflict.waw_d;
  Alcotest.(check int) "no cross-process RAW" 0 s.Conflict.raw_d

let test_registry_completeness () =
  Alcotest.(check int) "23 Table 4 configurations" 23
    (List.length Registry.table4_entries);
  Alcotest.(check int) "25 configurations in total" 25
    (List.length Registry.all);
  let apps =
    List.sort_uniq compare (List.map (fun e -> e.Registry.app) Registry.all)
  in
  Alcotest.(check int) "17 distinct applications" 17 (List.length apps);
  Alcotest.(check bool) "lookup works" true
    (Registry.find "flash-fbs" <> None);
  Alcotest.(check bool) "unknown lookup" true (Registry.find "nonesuch" = None)

let suite =
  let table3_cases =
    List.map
      (fun entry ->
        Alcotest.test_case
          ("table3 " ^ Registry.label entry)
          `Quick (test_table3 entry))
      Registry.all
  in
  let table4_cases =
    List.filter_map
      (fun entry ->
        Option.map
          (fun expected ->
            Alcotest.test_case
              ("table4 " ^ Registry.label entry)
              `Quick (test_table4 entry expected))
          entry.Registry.expected_conflicts)
      Registry.all
  in
  table3_cases @ table4_cases
  @ [
      Alcotest.test_case "commit clears FLASH only" `Quick
        test_commit_clears_flash_only;
      Alcotest.test_case "only FLASH crosses processes" `Quick
        test_only_flash_has_cross_process_conflicts;
      Alcotest.test_case "conflicts are race-free" `Quick
        test_conflicts_are_race_free;
      Alcotest.test_case "scale independence" `Slow test_scale_independence;
      Alcotest.test_case "traces fully resolved" `Quick
        test_no_unresolved_records;
      Alcotest.test_case "validation matches prediction" `Slow
        test_validation_matches_prediction;
      Alcotest.test_case "FLASH collective-metadata fix" `Quick
        test_flash_collective_metadata_fix;
      Alcotest.test_case "BurstFS exception" `Slow test_burstfs_exception;
      Alcotest.test_case "registry completeness" `Quick
        test_registry_completeness;
    ]
