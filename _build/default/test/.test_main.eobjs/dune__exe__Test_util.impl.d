test/test_util.ml: Alcotest Array Fun Hpcfs_util List QCheck QCheck_alcotest String
