test/test_formats.ml: Alcotest Bytes Hpcfs_formats Hpcfs_fs Hpcfs_mpi Hpcfs_posix Hpcfs_sim Hpcfs_trace List String
