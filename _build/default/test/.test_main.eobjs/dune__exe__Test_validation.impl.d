test/test_validation.ml: Alcotest Bytes Hpcfs_apps Hpcfs_core Hpcfs_fs Hpcfs_mpi Hpcfs_posix Hpcfs_trace List
