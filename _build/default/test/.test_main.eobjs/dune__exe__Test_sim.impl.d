test/test_sim.ml: Alcotest Array Hpcfs_mpi Hpcfs_sim List
