test/test_posix.ml: Alcotest Bytes Hpcfs_fs Hpcfs_posix Hpcfs_sim Hpcfs_trace List Option
