test/test_trace.ml: Alcotest Array Filename Hpcfs_trace List QCheck QCheck_alcotest String Sys
