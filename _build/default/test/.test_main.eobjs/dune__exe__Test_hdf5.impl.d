test/test_hdf5.ml: Alcotest Bytes Hpcfs_fs Hpcfs_hdf5 Hpcfs_mpi Hpcfs_mpiio Hpcfs_posix Hpcfs_sim Hpcfs_trace List Printf String
