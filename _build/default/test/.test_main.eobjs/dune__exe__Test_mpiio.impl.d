test/test_mpiio.ml: Alcotest Bytes Char Hpcfs_fs Hpcfs_mpi Hpcfs_mpiio Hpcfs_posix Hpcfs_sim Hpcfs_trace List Printf String
