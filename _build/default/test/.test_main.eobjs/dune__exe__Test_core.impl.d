test/test_core.ml: Alcotest Array Fun Hpcfs_core Hpcfs_fs Hpcfs_mpi Hpcfs_trace Hpcfs_util List Printf QCheck QCheck_alcotest
