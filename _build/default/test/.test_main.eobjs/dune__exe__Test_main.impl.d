test/test_main.ml: Alcotest Test_apps Test_core Test_formats Test_fs Test_hdf5 Test_integration Test_mpiio Test_posix Test_sim Test_trace Test_util Test_validation
