test/test_fs.ml: Alcotest Bytes Char Hpcfs_fs Hpcfs_util List QCheck QCheck_alcotest
