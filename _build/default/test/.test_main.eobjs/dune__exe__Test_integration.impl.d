test/test_integration.ml: Bytes Fun Hpcfs_core Hpcfs_fs Hpcfs_posix Hpcfs_sim Hpcfs_trace Hpcfs_util List Printf QCheck QCheck_alcotest
