test/test_apps.ml: Alcotest Hashtbl Hpcfs_apps Hpcfs_core Hpcfs_fs List Option
