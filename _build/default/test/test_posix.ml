(* Tests for the instrumented POSIX layer: semantics of the calls and the
   trace records they emit. *)

module Sched = Hpcfs_sim.Sched
module Consistency = Hpcfs_fs.Consistency
module Pfs = Hpcfs_fs.Pfs
module Posix = Hpcfs_posix.Posix
module Collector = Hpcfs_trace.Collector
module Record = Hpcfs_trace.Record

(* Run [body] as a single simulated rank and return (value, trace). *)
let with_ctx body =
  let pfs = Pfs.create Consistency.Strong in
  let collector = Collector.create () in
  let ctx = Posix.make_ctx pfs collector in
  let result = ref None in
  Sched.run ~nprocs:1 (fun _ -> result := Some (body ctx));
  (Option.get !result, Collector.records collector)

let funcs records = List.map (fun r -> r.Record.func) records

let test_open_write_read_close () =
  let (), records =
    with_ctx (fun ctx ->
        let fd = Posix.openf ctx "/f" [ Posix.O_RDWR; Posix.O_CREAT ] in
        ignore (Posix.write ctx fd (Bytes.of_string "hello"));
        ignore (Posix.lseek ctx fd 0 Posix.SEEK_SET);
        let data = Posix.read ctx fd 5 in
        Alcotest.(check string) "read back" "hello" (Bytes.to_string data);
        Posix.close ctx fd)
  in
  Alcotest.(check (list string)) "trace functions"
    [ "open"; "write"; "lseek"; "read"; "close" ]
    (funcs records)

let test_offsets_advance () =
  let (), _ =
    with_ctx (fun ctx ->
        let fd = Posix.openf ctx "/f" [ Posix.O_RDWR; Posix.O_CREAT ] in
        ignore (Posix.write ctx fd (Bytes.make 10 'a'));
        Alcotest.(check int) "pos after write" 10 (Posix.fd_pos ctx fd);
        ignore (Posix.pwrite ctx fd ~off:100 (Bytes.make 5 'b'));
        Alcotest.(check int) "pwrite does not move pos" 10 (Posix.fd_pos ctx fd);
        ignore (Posix.lseek ctx fd (-3) Posix.SEEK_END);
        Alcotest.(check int) "seek_end" 102 (Posix.fd_pos ctx fd);
        ignore (Posix.lseek ctx fd 2 Posix.SEEK_CUR);
        Alcotest.(check int) "seek_cur" 104 (Posix.fd_pos ctx fd))
  in
  ()

let test_append_mode () =
  let (), _ =
    with_ctx (fun ctx ->
        let fd = Posix.openf ctx "/log" [ Posix.O_WRONLY; Posix.O_CREAT ] in
        ignore (Posix.write ctx fd (Bytes.make 8 'x'));
        Posix.close ctx fd;
        let fd = Posix.openf ctx "/log" [ Posix.O_WRONLY; Posix.O_APPEND ] in
        ignore (Posix.write ctx fd (Bytes.make 4 'y'));
        Alcotest.(check int) "appended at end" 12 (Posix.fd_pos ctx fd);
        Posix.close ctx fd)
  in
  ()

let test_trunc_flag () =
  let (), _ =
    with_ctx (fun ctx ->
        let fd = Posix.openf ctx "/t" [ Posix.O_WRONLY; Posix.O_CREAT ] in
        ignore (Posix.write ctx fd (Bytes.make 100 'z'));
        Posix.close ctx fd;
        let fd = Posix.openf ctx "/t" [ Posix.O_WRONLY; Posix.O_TRUNC ] in
        let st = Posix.fstat ctx fd in
        Alcotest.(check int) "truncated" 0 st.Hpcfs_fs.Namespace.st_size;
        Posix.close ctx fd)
  in
  ()

let test_short_read_at_eof () =
  let (), records =
    with_ctx (fun ctx ->
        let fd = Posix.openf ctx "/s" [ Posix.O_RDWR; Posix.O_CREAT ] in
        ignore (Posix.write ctx fd (Bytes.make 6 'q'));
        ignore (Posix.lseek ctx fd 0 Posix.SEEK_SET);
        let data = Posix.read ctx fd 100 in
        Alcotest.(check int) "short read" 6 (Bytes.length data);
        Posix.close ctx fd)
  in
  (* The read record must carry the transferred count, not the request. *)
  let read_rec =
    List.find (fun r -> r.Record.func = "read") records
  in
  Alcotest.(check (option int)) "recorded transfer" (Some 6) read_rec.Record.count

let test_errors () =
  let (), _ =
    with_ctx (fun ctx ->
        (match Posix.openf ctx "/missing" [ Posix.O_RDONLY ] with
        | exception Posix.Posix_error { func = "open"; _ } -> ()
        | _ -> Alcotest.fail "expected ENOENT");
        (match Posix.read ctx 99 4 with
        | exception Posix.Posix_error { msg = "bad file descriptor"; _ } -> ()
        | _ -> Alcotest.fail "expected EBADF");
        let fd = Posix.openf ctx "/ro" [ Posix.O_RDONLY; Posix.O_CREAT ] in
        match Posix.write ctx fd (Bytes.make 1 'x') with
        | exception Posix.Posix_error _ -> ()
        | _ -> Alcotest.fail "expected not-writable")
  in
  ()

let test_stdio_variants () =
  let (), records =
    with_ctx (fun ctx ->
        let fd = Posix.fopen ctx "/std" "w+" in
        ignore (Posix.fwrite ctx fd (Bytes.make 4 'a'));
        Posix.fflush ctx fd;
        Posix.fseek ctx fd 0 Posix.SEEK_SET;
        ignore (Posix.fread ctx fd 4);
        Posix.fclose ctx fd)
  in
  Alcotest.(check (list string)) "stdio trace"
    [ "fopen"; "fwrite"; "fflush"; "fseek"; "fread"; "fclose" ]
    (funcs records)

let test_metadata_ops_traced () =
  let (), records =
    with_ctx (fun ctx ->
        Posix.mkdir ctx "/dir";
        ignore (Posix.access ctx "/dir");
        ignore (Posix.getcwd ctx ());
        Posix.chdir ctx "/dir";
        let fd = Posix.openf ctx "file" [ Posix.O_WRONLY; Posix.O_CREAT ] in
        ignore (Posix.write ctx fd (Bytes.make 10 'c'));
        ignore (Posix.fstat ctx fd);
        Posix.ftruncate ctx fd 5;
        Posix.close ctx fd;
        let st = Posix.stat ctx "/dir/file" in
        Alcotest.(check int) "relative path resolved + truncated" 5
          st.Hpcfs_fs.Namespace.st_size;
        Posix.rename ctx "/dir/file" "/dir/file2";
        ignore (Posix.opendir ctx "/dir");
        Posix.unlink ctx "/dir/file2";
        Posix.rmdir ctx "/dir")
  in
  let fs = funcs records in
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " traced") true (List.mem f fs))
    [ "mkdir"; "access"; "getcwd"; "chdir"; "fstat"; "ftruncate"; "stat";
      "rename"; "opendir"; "readdir"; "closedir"; "unlink"; "rmdir" ]

let test_dup_and_misc () =
  let (), _ =
    with_ctx (fun ctx ->
        let fd = Posix.openf ctx "/d" [ Posix.O_RDWR; Posix.O_CREAT ] in
        let fd2 = Posix.dup ctx fd in
        Alcotest.(check string) "same file" (Posix.fd_path ctx fd)
          (Posix.fd_path ctx fd2);
        Alcotest.(check int) "fileno identity" fd (Posix.fileno ctx fd);
        Alcotest.(check int) "fcntl returns 0" 0 (Posix.fcntl ctx fd "F_GETFL");
        let old = Posix.umask ctx 0o077 in
        Alcotest.(check int) "default umask" 0o022 old;
        Posix.mmap ctx fd ~len:128;
        Posix.msync ctx fd;
        Posix.close ctx fd)
  in
  ()

let test_open_record_has_fd_and_flags () =
  let fd, records =
    with_ctx (fun ctx ->
        Posix.openf ctx "/x" [ Posix.O_WRONLY; Posix.O_CREAT; Posix.O_APPEND ])
  in
  let open_rec = List.hd records in
  Alcotest.(check (option int)) "fd recorded" (Some fd) open_rec.Record.fd;
  Alcotest.(check (option string)) "flags recorded"
    (Some "O_WRONLY|O_CREAT|O_APPEND")
    (Record.arg open_rec "flags")

let test_origin_tagging () =
  let (), records =
    with_ctx (fun ctx ->
        let fd =
          Posix.openf ctx ~origin:Record.O_hdf5 "/h5"
            [ Posix.O_WRONLY; Posix.O_CREAT ]
        in
        ignore (Posix.write ctx ~origin:Record.O_hdf5 fd (Bytes.make 1 'a'));
        Posix.close ctx ~origin:Record.O_hdf5 fd)
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "origin is hdf5" true
        (r.Record.origin = Record.O_hdf5))
    records

let suite =
  [
    Alcotest.test_case "open/write/read/close" `Quick test_open_write_read_close;
    Alcotest.test_case "offsets advance" `Quick test_offsets_advance;
    Alcotest.test_case "append mode" `Quick test_append_mode;
    Alcotest.test_case "O_TRUNC" `Quick test_trunc_flag;
    Alcotest.test_case "short read at EOF" `Quick test_short_read_at_eof;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "stdio variants" `Quick test_stdio_variants;
    Alcotest.test_case "metadata ops traced" `Quick test_metadata_ops_traced;
    Alcotest.test_case "dup and misc" `Quick test_dup_and_misc;
    Alcotest.test_case "open record fd+flags" `Quick
      test_open_record_has_fd_and_flags;
    Alcotest.test_case "origin tagging" `Quick test_origin_tagging;
  ]
