(* Tests for the NetCDF / ADIOS / Silo format models: each must produce the
   library-metadata behaviour the paper attributes to it. *)

module Sched = Hpcfs_sim.Sched
module Mpi = Hpcfs_mpi.Mpi
module Consistency = Hpcfs_fs.Consistency
module Pfs = Hpcfs_fs.Pfs
module Fdata = Hpcfs_fs.Fdata
module Posix = Hpcfs_posix.Posix
module Netcdf = Hpcfs_formats.Netcdf
module Adios = Hpcfs_formats.Adios
module Silo = Hpcfs_formats.Silo
module Collector = Hpcfs_trace.Collector
module Record = Hpcfs_trace.Record

type harness = { pfs : Pfs.t; collector : Collector.t; posix : Posix.ctx }

let make_harness () =
  let pfs = Pfs.create Consistency.Strong in
  let collector = Collector.create () in
  let posix = Posix.make_ctx pfs collector in
  { pfs; collector; posix }

let overlapping_writes h file =
  (* Count pairs of overlapping POSIX writes to [file]. *)
  let writes =
    Collector.records h.collector
    |> List.filter (fun r ->
           r.Record.file = Some file
           && (r.Record.func = "pwrite" || r.Record.func = "write"))
  in
  ignore writes;
  List.length writes

let test_netcdf_numrecs_overwrite () =
  let h = make_harness () in
  Sched.run ~nprocs:1 (fun _ ->
      let nc = Netcdf.create h.posix "/d.nc" ~header_bytes:128 in
      Netcdf.append_record nc (Bytes.make 32 'r');
      Netcdf.append_record nc (Bytes.make 32 'r');
      Netcdf.sync nc;
      Netcdf.close nc);
  let header_writes =
    Collector.records h.collector
    |> List.filter (fun r ->
           r.Record.func = "pwrite" && r.Record.offset = Some 4)
  in
  Alcotest.(check int) "numrecs rewritten per record" 2
    (List.length header_writes);
  (* Records land consecutively after the header. *)
  let size = Pfs.file_size h.pfs "/d.nc" in
  Alcotest.(check int) "file size" (128 + 64) size

let test_netcdf_bad_header () =
  let h = make_harness () in
  Sched.run ~nprocs:1 (fun _ ->
      match Netcdf.create h.posix "/bad.nc" ~header_bytes:4 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected header-size failure")

let test_adios_layout_and_idx () =
  let h = make_harness () in
  let comm = Mpi.world () in
  Sched.run ~nprocs:8 (fun _ ->
      ignore (Mpi.size comm);
      let bp = Adios.open_write h.posix comm "/out.bp" ~substreams:4 in
      Adios.write_step bp (Bytes.make 16 's');
      Adios.write_step bp (Bytes.make 16 's');
      Adios.close bp);
  (* Four substream data files plus md.0 and md.idx. *)
  let files =
    Hpcfs_fs.Namespace.all_files (Pfs.namespace h.pfs)
    |> List.filter (fun f -> String.length f > 8 && String.sub f 0 8 = "/out.bp/")
  in
  Alcotest.(check int) "bp directory contents" 6 (List.length files);
  (* Each substream file holds the payloads of its two ranks, per step. *)
  Alcotest.(check int) "data.0 size" (16 * 2 * 2)
    (Pfs.file_size h.pfs "/out.bp/data.0");
  (* The single-byte step-counter overwrite in md.idx. *)
  let byte_overwrites =
    Collector.records h.collector
    |> List.filter (fun r ->
           r.Record.file = Some "/out.bp/md.idx"
           && r.Record.func = "pwrite" && r.Record.count = Some 1)
  in
  Alcotest.(check int) "one-byte idx overwrite per step" 2
    (List.length byte_overwrites)

let test_adios_substream_mapping () =
  let h = make_harness () in
  let comm = Mpi.world () in
  let checked = ref 0 in
  Sched.run ~nprocs:8 (fun _ ->
      let bp = Adios.open_write h.posix comm "/map.bp" ~substreams:4 in
      if Mpi.rank comm = 0 then begin
        Alcotest.(check int) "rank0 -> sub0" 0 (Adios.substream_of_rank bp 0);
        Alcotest.(check int) "rank7 -> sub3" 3 (Adios.substream_of_rank bp 7);
        incr checked
      end;
      Adios.close bp);
  Alcotest.(check int) "assertions ran" 1 !checked

let test_silo_baton_and_toc () =
  let h = make_harness () in
  let comm = Mpi.world () in
  Sched.run ~nprocs:8 (fun _ ->
      let silo = Silo.create h.posix comm ~nfiles:2 ~basename:"/silo_out" in
      Silo.write_blocks silo ~block:(Bytes.make 64 'b'));
  (* Two group files, four ranks each: TOC + 4 blocks. *)
  Alcotest.(check int) "group file size" (Silo.toc_bytes + (4 * 64))
    (Pfs.file_size h.pfs "/silo_out/part.0.silo");
  (* Every rank's turn rewrites the TOC twice: overlapping same-process
     writes (MACSio's WAW-S), and each turn ends with a close, so the final
     observer sees consistent contents even under session semantics. *)
  let toc_writes =
    Collector.records h.collector
    |> List.filter (fun r ->
           r.Record.func = "pwrite" && r.Record.offset = Some 0
           && r.Record.file = Some "/silo_out/part.0.silo")
  in
  Alcotest.(check int) "two TOC writes per rank turn" 8
    (List.length toc_writes);
  ignore (overlapping_writes h "/silo_out/part.0.silo")

let test_silo_group_assignment () =
  let h = make_harness () in
  let comm = Mpi.world () in
  Sched.run ~nprocs:8 (fun _ ->
      let silo = Silo.create h.posix comm ~nfiles:2 ~basename:"/silo_g" in
      if Mpi.rank comm = 0 then begin
        Alcotest.(check int) "rank0 group" 0 (Silo.group_of_rank silo 0);
        Alcotest.(check int) "rank3 group" 0 (Silo.group_of_rank silo 3);
        Alcotest.(check int) "rank4 group" 1 (Silo.group_of_rank silo 4);
        Alcotest.(check int) "rank7 group" 1 (Silo.group_of_rank silo 7)
      end;
      Mpi.barrier comm)

let suite =
  [
    Alcotest.test_case "netcdf numrecs overwrite" `Quick
      test_netcdf_numrecs_overwrite;
    Alcotest.test_case "netcdf bad header" `Quick test_netcdf_bad_header;
    Alcotest.test_case "adios layout and idx" `Quick test_adios_layout_and_idx;
    Alcotest.test_case "adios substreams" `Quick test_adios_substream_mapping;
    Alcotest.test_case "silo baton and toc" `Quick test_silo_baton_and_toc;
    Alcotest.test_case "silo groups" `Quick test_silo_group_assignment;
  ]
