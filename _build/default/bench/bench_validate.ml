(* Validation and ablation experiments beyond the paper's tables:

   - [validate]: run every configuration against each consistency model on
     the PFS simulator and check the trace-based recommendation against
     observed behaviour (the paper's central claim, tested end-to-end).
   - [scale]: Section 6.1's claim that conflict patterns are scale-free.
   - [locks]: the Section 3.1 motivation — lock-manager traffic under
     strong semantics vs none under the relaxed models. *)

module Registry = Hpcfs_apps.Registry
module Runner = Hpcfs_apps.Runner
module Validation = Hpcfs_apps.Validation
module Report = Hpcfs_core.Report
module Conflict = Hpcfs_core.Conflict
module Recommend = Hpcfs_core.Recommend
module Consistency = Hpcfs_fs.Consistency
module Pfs = Hpcfs_fs.Pfs
module Lockmgr = Hpcfs_fs.Lockmgr
module Sharing = Hpcfs_core.Sharing
module Table = Hpcfs_util.Table
open Bench_common

let semantics_name = function
  | Consistency.Strong -> "strong"
  | Consistency.Commit -> "commit"
  | Consistency.Session -> "session"
  | Consistency.Eventual _ -> "eventual"

let validate () =
  section
    (Printf.sprintf
       "Validation: every configuration on the PFS simulator (%d ranks)"
       nprocs);
  let t =
    Table.create
      [ "Configuration"; "recommended"; "strong"; "commit"; "session";
        "prediction holds" ]
  in
  List.iter
    (fun entry ->
      let run = run_of entry in
      let verdict = run.report.Report.verdict in
      let outcomes = Validation.validate ~nprocs entry.Registry.body in
      let cell o =
        if Validation.correct o then "ok"
        else
          Printf.sprintf "stale:%d corrupt:%d/%d" o.Validation.stale_reads
            o.Validation.corrupted_files o.Validation.files
      in
      let find s =
        List.find (fun o -> o.Validation.semantics = s) outcomes
      in
      let strong = find Consistency.Strong in
      let commit = find Consistency.Commit in
      let session = find Consistency.Session in
      (* The recommendation must be safe: running at the recommended level
         (or stronger) must be correct. *)
      let holds =
        Validation.correct strong
        && (match verdict.Recommend.semantics with
           | Consistency.Session -> Validation.correct session && Validation.correct commit
           | Consistency.Commit -> Validation.correct commit
           | Consistency.Strong | Consistency.Eventual _ -> true)
      in
      Table.add_row t
        [
          Registry.label entry;
          semantics_name verdict.Recommend.semantics;
          cell strong;
          cell commit;
          cell session;
          check holds;
        ])
    Registry.all;
  Table.print t;
  print_endline
    "(expected shape: 16 of 17 applications run correctly under session\n\
    \ semantics; FLASH corrupts under session and is healed by commit.)"

let scale () =
  section "Scale independence of conflict patterns (Section 6.1)";
  let scales = [ 16; 32; 64 ] in
  let t =
    Table.create
      ([ "Configuration" ]
      @ List.map (fun n -> Printf.sprintf "%d ranks" n) scales
      @ [ "invariant" ])
  in
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> ()
      | Some entry ->
        let cells =
          List.map
            (fun n ->
              let result = Runner.run ~nprocs:n entry.Registry.body in
              let report = Report.analyze ~nprocs:n result.Runner.records in
              let s = Report.session_summary report in
              Printf.sprintf "%s%s%s%s [%s]"
                (if s.Conflict.waw_s > 0 then "Ws" else "--")
                (if s.Conflict.waw_d > 0 then "Wd" else "--")
                (if s.Conflict.raw_s > 0 then "Rs" else "--")
                (if s.Conflict.raw_d > 0 then "Rd" else "--")
                (Sharing.xy_name report.Report.sharing.Sharing.xy))
            scales
        in
        let invariant =
          match cells with
          | first :: rest -> List.for_all (fun c -> c = first) rest
          | [] -> true
        in
        Table.add_row t ((name :: cells) @ [ check invariant ]))
    [ "FLASH-fbs"; "FLASH-nofbs"; "ENZO"; "NWChem"; "MACSio"; "LAMMPS-ADIOS";
      "VPIC-IO"; "LBANN" ];
  Table.print t

let meta () =
  section
    "Extension (Section 7 future work): potential metadata-operation conflicts";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "Configuration"; "mutate/mutate"; "mutate/observe"; "paths" ]
  in
  List.iter
    (fun run ->
      let conflicts =
        Hpcfs_core.Meta_conflict.detect run.result.Runner.records
      in
      let s = Hpcfs_core.Meta_conflict.summarize conflicts in
      if s.Hpcfs_core.Meta_conflict.mutate_mutate > 0
         || s.Hpcfs_core.Meta_conflict.mutate_observe > 0 then
        Table.add_row t
          [
            Registry.label run.entry;
            string_of_int s.Hpcfs_core.Meta_conflict.mutate_mutate;
            string_of_int s.Hpcfs_core.Meta_conflict.mutate_observe;
            string_of_int s.Hpcfs_core.Meta_conflict.paths;
          ])
    (Bench_common.all_runs ());
  Table.print t;
  print_endline
    "(configurations with no potential metadata conflicts are omitted; a\n\
    \ flagged pair means a namespace mutation one process made could be\n\
    \ invisible to another under relaxed metadata semantics unless their\n\
    \ synchronization orders it - the check the paper leaves as future work.)"

let burstfs () =
  section
    "BurstFS exception (Section 6.3): no single-process write ordering";
  let t =
    Table.create
      [ "Configuration"; "same-process conflicts"; "commit PFS"; "BurstFS-like" ]
  in
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> ()
      | Some entry ->
        let run = run_of entry in
        let s = Report.session_summary run.report in
        let same = s.Conflict.waw_s + s.Conflict.raw_s in
        let normal =
          List.find
            (fun o -> o.Validation.semantics = Consistency.Commit)
            (Validation.validate ~nprocs entry.Registry.body)
        in
        let burst = Validation.validate_burstfs ~nprocs entry.Registry.body in
        let cell o =
          if Validation.correct o then "correct"
          else
            Printf.sprintf "stale:%d corrupt:%d/%d" o.Validation.stale_reads
              o.Validation.corrupted_files o.Validation.files
        in
        Table.add_row t
          [ name; string_of_int same; cell normal; cell burst ])
    [ "NWChem"; "GAMESS"; "MACSio"; "LAMMPS-NetCDF"; "LAMMPS-POSIX";
      "HACC-IO-POSIX" ];
  Table.print t;
  print_endline
    "(expected shape: applications whose conflicts are same-process only are\n\
    \ correct on every commit-semantics PFS except one that, like BurstFS,\n\
    \ does not order a single process's overlapping writes.)"

let locks () =
  section "Ablation: lock-manager traffic, strong vs relaxed semantics";
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "Configuration"; "acquisitions"; "revocations"; "messages";
        "messages (relaxed)" ]
  in
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> ()
      | Some entry ->
        let strong =
          Runner.run ~semantics:Consistency.Strong ~nprocs entry.Registry.body
        in
        let relaxed =
          Runner.run ~semantics:Consistency.Session ~nprocs entry.Registry.body
        in
        let sl = strong.Runner.stats.Pfs.locks in
        let rl = relaxed.Runner.stats.Pfs.locks in
        Table.add_row t
          [
            name;
            string_of_int sl.Lockmgr.acquisitions;
            string_of_int sl.Lockmgr.revocations;
            string_of_int sl.Lockmgr.messages;
            string_of_int rl.Lockmgr.messages;
          ])
    [ "FLASH-fbs"; "FLASH-nofbs"; "VPIC-IO"; "Chombo"; "LBANN"; "HACC-IO-POSIX" ];
  Table.print t;
  print_endline
    "(expected shape: shared-file configurations generate revocation traffic\n\
    \ under strong semantics - the Section 3.1 bottleneck - while relaxed\n\
    \ semantics eliminate lock messages entirely.)"
