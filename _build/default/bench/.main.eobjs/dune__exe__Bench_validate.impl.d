bench/bench_validate.ml: Bench_common Hpcfs_apps Hpcfs_core Hpcfs_fs Hpcfs_util List Printf
