bench/main.ml: Array Bench_common Bench_figs Bench_perf Bench_tables Bench_validate List Printf Sys
