bench/main.mli:
