bench/bench_perf.ml: Analyze Bechamel Bench_common Benchmark Hashtbl Hpcfs_apps Hpcfs_core Hpcfs_util List Measure Option Printf Staged Test Time Toolkit Unix
