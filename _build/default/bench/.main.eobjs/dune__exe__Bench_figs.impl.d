bench/bench_figs.ml: Bench_common Hashtbl Hpcfs_apps Hpcfs_core Hpcfs_hdf5 Hpcfs_trace Hpcfs_util List Option Printf String Sys
