bench/bench_tables.ml: Bench_common Hashtbl Hpcfs_apps Hpcfs_core Hpcfs_fs Hpcfs_util List Option Printf String
