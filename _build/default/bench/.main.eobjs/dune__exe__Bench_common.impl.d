bench/bench_common.ml: Hashtbl Hpcfs_apps Hpcfs_core Hpcfs_util List Printf Sys
