(* Shared plumbing for the experiment reproduction harness: one traced run
   per configuration, memoized, plus small formatting helpers. *)

module Registry = Hpcfs_apps.Registry
module Runner = Hpcfs_apps.Runner
module Report = Hpcfs_core.Report
module Table = Hpcfs_util.Table

let nprocs =
  match Sys.getenv_opt "HPCFS_BENCH_NPROCS" with
  | Some s -> (try max 4 (int_of_string s) with _ -> 64)
  | None -> 64

type run = {
  entry : Registry.entry;
  result : Runner.result;
  report : Report.t;
}

let cache : (string, run) Hashtbl.t = Hashtbl.create 32

let run_of entry =
  let label = Registry.label entry in
  match Hashtbl.find_opt cache label with
  | Some r -> r
  | None ->
    let result = Runner.run ~nprocs entry.Registry.body in
    let report = Report.analyze ~nprocs result.Runner.records in
    let r = { entry; result; report } in
    Hashtbl.replace cache label r;
    r

let all_runs () = List.map run_of Registry.all
let table4_runs () = List.map run_of Registry.table4_entries

let mark b = if b then "x" else ""
let check b = if b then "ok" else "DIFF"

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let pct f = Printf.sprintf "%.1f" f
