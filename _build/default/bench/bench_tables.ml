(* Reproduction of the paper's tables 1-5. *)

module Registry = Hpcfs_apps.Registry
module Report = Hpcfs_core.Report
module Sharing = Hpcfs_core.Sharing
module Conflict = Hpcfs_core.Conflict
module Consistency = Hpcfs_fs.Consistency
module Table = Hpcfs_util.Table
open Bench_common

let table1 () =
  section "Table 1: HPC file systems and their consistency semantics";
  let t = Table.create [ "Consistency Semantics"; "File Systems" ] in
  List.iter
    (fun (category, systems) ->
      Table.add_row t [ category; String.concat ", " systems ])
    Consistency.table1;
  Table.print t

let table2 () =
  section "Table 2: build and link configurations";
  let combos = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let key = (e.Registry.compiler, e.Registry.mpi, e.Registry.hdf5) in
      match Hashtbl.find_opt combos key with
      | Some l ->
        if not (List.mem e.Registry.app !l) then l := e.Registry.app :: !l
      | None -> Hashtbl.add combos key (ref [ e.Registry.app ]))
    Registry.all;
  let t = Table.create [ "Applications"; "Compiler"; "MPI"; "HDF5" ] in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) combos []
  |> List.sort compare
  |> List.iter (fun ((compiler, mpi, hdf5), apps) ->
         Table.add_row t
           [
             String.concat ", " (List.sort_uniq compare !apps);
             compiler;
             mpi;
             Option.value ~default:"-" hdf5;
           ]);
  Table.print t

let table3 () =
  section
    (Printf.sprintf
       "Table 3: high-level access patterns (measured at %d ranks vs paper)"
       nprocs);
  let t =
    Table.create
      [ "Configuration"; "Paper X-Y"; "Measured"; "Paper structure";
        "Measured structure"; "Agreement" ]
  in
  List.iter
    (fun run ->
      let e = run.entry in
      let s = run.report.Report.sharing in
      let got_xy = Sharing.xy_name s.Sharing.xy in
      let got_st = Sharing.structure_name s.Sharing.structure in
      Table.add_row t
        [
          Registry.label e;
          e.Registry.expected_xy;
          got_xy;
          e.Registry.expected_structure;
          got_st;
          check
            (got_xy = e.Registry.expected_xy
            && got_st = e.Registry.expected_structure);
        ])
    (all_runs ());
  Table.print t

let conflict_cells (s : Conflict.summary) =
  [
    mark (s.Conflict.waw_s > 0);
    mark (s.Conflict.waw_d > 0);
    mark (s.Conflict.raw_s > 0);
    mark (s.Conflict.raw_d > 0);
  ]

let table4 () =
  section
    (Printf.sprintf
       "Table 4: conflicts with session semantics (measured at %d ranks)"
       nprocs);
  let t =
    Table.create
      [ "Application"; "I/O Library"; "WAW S"; "WAW D"; "RAW S"; "RAW D";
        "Matches paper"; "Under commit" ]
  in
  List.iter
    (fun run ->
      let e = run.entry in
      let session = Report.session_summary run.report in
      let commit = Report.commit_summary run.report in
      let expected = Option.get e.Registry.expected_conflicts in
      let got =
        {
          Registry.waw_s = session.Conflict.waw_s > 0;
          waw_d = session.Conflict.waw_d > 0;
          raw_s = session.Conflict.raw_s > 0;
          raw_d = session.Conflict.raw_d > 0;
        }
      in
      let commit_desc =
        if Conflict.no_conflicts commit then
          if Conflict.no_conflicts session then "" else "disappear"
        else "unchanged"
      in
      Table.add_row t
        (e.Registry.app :: e.Registry.io_lib :: conflict_cells session
        @ [ check (got = expected); commit_desc ]))
    (table4_runs ());
  Table.print t;
  print_endline
    "('disappear' under commit semantics is expected for FLASH only; all\n\
    \ other configurations keep their session-semantics pattern.)"

let table5 () =
  section "Table 5: applications and configurations";
  let t = Table.create [ "Application"; "Version"; "I/O Library"; "Configuration" ] in
  List.iter
    (fun e ->
      Table.add_row t
        [ Registry.label e; e.Registry.version; e.Registry.io_lib;
          e.Registry.description ])
    Registry.all;
  Table.print t
