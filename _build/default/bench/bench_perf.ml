(* Performance benchmarks for the analysis algorithms themselves, including
   the ablations DESIGN.md calls out: sorting vs merging in Algorithm 1 (the
   paper's footnote) and annotated vs table-lookup conflict conditions
   (Section 5.2's two methods), plus the near-linear-in-practice scaling
   claim. *)

module Access = Hpcfs_core.Access
module Overlap = Hpcfs_core.Overlap
module Conflict = Hpcfs_core.Conflict
module Offsets = Hpcfs_core.Offsets
module Eventtab = Hpcfs_core.Eventtab
module Interval = Hpcfs_util.Interval
module Prng = Hpcfs_util.Prng
module Table = Hpcfs_util.Table
open Bench_common
open Bechamel

(* Synthetic workloads ----------------------------------------------------- *)

let make_access ~time ~rank ~lo ~len ~write =
  {
    Access.time;
    rank;
    file = "/bench";
    iv = Interval.of_len lo len;
    op = (if write then Access.Write else Access.Read);
    func = (if write then "write" else "read");
    t_open = 0;
    t_commit = max_int;
    t_close = max_int;
  }

(* Realistic trace: strided checkpoint writes, sparse overlaps from a small
   metadata region every rank rewrites — the shape real traces have, on
   which Algorithm 1 runs in near-linear time. *)
let realistic n =
  let g = Prng.create 7 in
  List.init n (fun i ->
      let rank = i mod 64 in
      if i mod 97 = 0 then
        (* small shared header rewrite *)
        make_access ~time:(i + 1) ~rank ~lo:(Prng.int g 64) ~len:8 ~write:true
      else
        make_access ~time:(i + 1) ~rank
          ~lo:(1024 + (i * 512))
          ~len:(256 + Prng.int g 256)
          ~write:(Prng.int g 10 < 8))

(* Pathological trace: everything overlaps everything (worst case). *)
let pathological n =
  List.init n (fun i ->
      make_access ~time:(i + 1) ~rank:(i mod 8) ~lo:0 ~len:4096 ~write:true)

(* Bechamel helpers --------------------------------------------------------- *)

let run_bechamel tests =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let t =
    Table.create ~aligns:[ Table.Left; Table.Right ]
      [ "benchmark"; "time/run" ]
  in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
         let ns =
           match Analyze.OLS.estimates ols with
           | Some (est :: _) -> est
           | Some [] | None -> nan
         in
         let human =
           if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         Table.add_row t [ name; human ]);
  Table.print t

let perf () =
  section "Analysis-algorithm micro-benchmarks (Bechamel)";
  let trace = realistic 20_000 in
  let resolved_pairs = Overlap.detect trace in
  let tests =
    Test.make_grouped ~name:"analysis"
      [
        Test.make ~name:"algorithm1/sort (20k accesses)"
          (Staged.stage (fun () -> Overlap.detect trace));
        Test.make ~name:"algorithm1/merge (20k accesses)"
          (Staged.stage (fun () -> Overlap.detect_merge trace));
        Test.make ~name:"conflicts/annotated (session)"
          (Staged.stage (fun () ->
               Conflict.of_pairs Conflict.Session_semantics resolved_pairs));
        Test.make ~name:"conflicts/annotated (commit)"
          (Staged.stage (fun () ->
               Conflict.of_pairs Conflict.Commit_semantics resolved_pairs));
      ]
  in
  run_bechamel tests

let perf_tables_vs_annotated () =
  section "Ablation: annotated records vs binary-searched event tables";
  (* Need a trace with real open/close/commit events: reuse FLASH's. *)
  let flash = run_of (Option.get (Hpcfs_apps.Registry.find "FLASH-fbs")) in
  let resolved =
    Offsets.resolve flash.result.Hpcfs_apps.Runner.records
  in
  let pairs = Overlap.detect resolved.Offsets.accesses in
  let tests =
    Test.make_grouped ~name:"conflict-condition"
      [
        Test.make ~name:"annotated (FLASH trace)"
          (Staged.stage (fun () ->
               Conflict.of_pairs ~mode:Conflict.Annotated
                 Conflict.Session_semantics pairs));
        Test.make ~name:"event tables (FLASH trace)"
          (Staged.stage (fun () ->
               Conflict.of_pairs
                 ~mode:(Conflict.Tables resolved.Offsets.events)
                 Conflict.Session_semantics pairs));
      ]
  in
  run_bechamel tests

let scaling () =
  section "Algorithm 1 scaling: near-linear on realistic traces (Section 5.1)";
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "accesses"; "realistic (ms)"; "pairs"; "pathological (ms)" ]
  in
  List.iter
    (fun n ->
      let r = realistic n in
      let t0 = Unix.gettimeofday () in
      let pairs = Overlap.detect r in
      let t1 = Unix.gettimeofday () in
      (* The pathological workload is quadratic: cap its size. *)
      let path_ms =
        if n <= 4000 then begin
          let p = pathological n in
          let t2 = Unix.gettimeofday () in
          ignore (Overlap.detect p);
          let t3 = Unix.gettimeofday () in
          Printf.sprintf "%.1f" ((t3 -. t2) *. 1000.0)
        end
        else "-"
      in
      Table.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.1f" ((t1 -. t0) *. 1000.0);
          string_of_int (List.length pairs);
          path_ms;
        ])
    [ 1_000; 2_000; 4_000; 8_000; 16_000; 32_000; 64_000 ];
  Table.print t;
  print_endline
    "(expected shape: realistic-trace time grows ~linearly with the access\n\
    \ count; the all-overlapping workload exhibits the quadratic worst case.)"
